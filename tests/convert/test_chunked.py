"""Chunked executor: chunk-parallel conversion must produce *bit-identical*
output arrays to the serial vector backend.

This is the contract that lets the engine engage the chunked executor
freely (``convert(..., parallel=...)``): same dtypes, same array contents,
same metadata, for every vectorizable pair — with chunking forced onto
tiny inputs (small pool grain) so chunk-boundary merge paths actually run.
"""

import random
import warnings

import pytest

from repro.convert import chunkable, convert, plan_chunked
from repro.convert.chunked import rewrite_chunked
from repro.convert.engine import ConversionEngine
from repro.convert.planner import PlanOptions
from repro.convert.router import CostModel
from repro.formats.library import (
    BCSR,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
)
from repro.ir.runtime import WorkerPool
from repro.ir.vector import plan_vector
from repro.matrices.suite import get_matrix
from repro.storage.build import reference_build

from ..support.tensorgen import random_problem as _random_problem
from .test_backends import VECTOR_FORMATS, assert_tensors_bit_identical

EXTENDED = [BCSR(2, 2), DCSR, HICOO(2)]


@pytest.fixture(scope="module")
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


@pytest.fixture(scope="module")
def tiny_chunk_pool():
    """Four workers with a grain of 4: even ~10-nonzero streams split, so
    every merge path (offset merge, seen-filter, boundary runs) executes."""
    pool = WorkerPool(workers=4, grain=4)
    yield pool
    pool.shutdown()


@pytest.mark.parametrize("src", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
def test_chunked_bit_identical_all_vectorizable_pairs(
    src, dst, engine, tiny_chunk_pool
):
    assert chunkable(src, dst)
    chunked = engine.make_chunked(src, dst)
    for seed, (m, n) in enumerate([(7, 11), (1, 9), (8, 8)]):
        for style in ("empty", "dense", "sparse"):
            cells, vals = _random_problem(seed, m, n, style)
            tensor = reference_build(src, (m, n), cells, vals)
            vector = convert(tensor, dst, backend="vector", parallel=None)
            out = chunked(tensor, tiny_chunk_pool)
            assert out.to_coo() == dict(zip(cells, vals))
            assert_tensors_bit_identical(vector, out)


@pytest.mark.parametrize(
    "pair",
    [(COO3, CSF), (CSF, COO3), (CSF, CSF)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_chunked_bit_identical_third_order(pair, engine, tiny_chunk_pool):
    src, dst = pair
    rng = random.Random(11)
    cells = rng.sample(
        [(i, j, k) for i in range(4) for j in range(5) for k in range(6)], 37
    )
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    tensor = reference_build(src, (4, 5, 6), cells, vals)
    vector = convert(tensor, dst, backend="vector", parallel=None)
    out = engine.make_chunked(src, dst)(tensor, tiny_chunk_pool)
    assert_tensors_bit_identical(vector, out)


@pytest.mark.parametrize(
    "pair",
    [(COO, CSR), (CSR, CSC), (COO, DIA), (CSR, ELL)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_chunked_bit_identical_on_suite_matrix(pair, engine, tiny_chunk_pool):
    src, dst = pair
    entry = get_matrix("scircuit", scale=0.05)
    tensor = entry.tensor(src)
    vector = convert(tensor, dst, backend="vector", parallel=None)
    out = engine.make_chunked(src, dst)(tensor, tiny_chunk_pool)
    assert_tensors_bit_identical(vector, out)


# ----------------------------------------------------------------------
# chunk-boundary edge cases


def test_chunk_boundary_splits_one_row(engine):
    """A single long row spanning every chunk: the yield-position merge
    must offset later chunks by the earlier chunks' per-row counts."""
    n = 64
    cells = [(3, j) for j in range(n)] + [(5, 0)]
    vals = [float(j + 1) for j in range(len(cells))]
    tensor = reference_build(COO, (8, n), cells, vals)
    pool = WorkerPool(workers=4, grain=2)
    serial = convert(tensor, CSR, backend="vector", parallel=None)
    out = engine.make_chunked(COO, CSR)(tensor, pool)
    assert_tensors_bit_identical(serial, out)
    pool.shutdown()


def test_chunk_boundary_splits_one_fiber(engine):
    """A CSF fiber (shared (i, j) prefix) split across chunks exercises
    the dedup merge: later chunks must reuse the first chunk's position."""
    cells = [(0, 0, 0)] + [(1, 2, k) for k in range(40)] + [(2, 1, 1)]
    vals = [float(k + 1) for k in range(len(cells))]
    tensor = reference_build(COO3, (3, 3, 40), cells, vals)
    pool = WorkerPool(workers=4, grain=2)
    serial = convert(tensor, CSF, backend="vector", parallel=None)
    out = engine.make_chunked(COO3, CSF)(tensor, pool)
    assert_tensors_bit_identical(serial, out)
    pool.shutdown()


def test_empty_tensor_chunks(engine, tiny_chunk_pool):
    tensor = reference_build(COO, (6, 6), [], [])
    serial = convert(tensor, CSR, backend="vector", parallel=None)
    out = engine.make_chunked(COO, CSR)(tensor, tiny_chunk_pool)
    assert_tensors_bit_identical(serial, out)


def test_one_worker_pool_equals_serial_exactly(engine):
    """A 1-worker pool is the serial path: one chunk, no threads, and the
    result is bit-identical to the serial vector backend."""
    pool = WorkerPool(workers=1)
    cells, vals = _random_problem(3, 9, 9, "sparse")
    tensor = reference_build(COO, (9, 9), cells, vals)
    serial = convert(tensor, CSR, backend="vector", parallel=None)
    out = engine.make_chunked(COO, CSR)(tensor, pool)
    assert_tensors_bit_identical(serial, out)
    assert pool._executor is None  # no thread ever started
    assert pool.bounds(10**7) == [(0, 10**7)]


# ----------------------------------------------------------------------
# engine policy


def test_parallel_auto_respects_threshold():
    eng = ConversionEngine(options=PlanOptions(parallel_threshold=10**6),
                           workers=4)
    cells, vals = _random_problem(1, 8, 8, "sparse")
    tensor = reference_build(COO, (8, 8), cells, vals)
    eng.convert(tensor, CSR)  # parallel="auto", tiny tensor: stays serial
    assert eng.cache_stats()["parallel_conversions"] == 0
    # a tiny threshold engages it (multi-core pools only under "auto")
    eng2 = ConversionEngine(options=PlanOptions(parallel_threshold=1),
                            workers=4)
    eng2.convert(tensor, CSR)
    assert eng2.cache_stats()["parallel_conversions"] == 1
    # ...but a single-worker engine never self-engages
    eng1 = ConversionEngine(options=PlanOptions(parallel_threshold=1),
                            workers=1)
    eng1.convert(tensor, CSR)
    assert eng1.cache_stats()["parallel_conversions"] == 0
    for e in (eng, eng1, eng2):
        e.shutdown()


def test_explicit_worker_count_forces_chunked(engine):
    cells, vals = _random_problem(2, 8, 8, "sparse")
    tensor = reference_build(COO, (8, 8), cells, vals)
    before = engine.cache_stats()["parallel_conversions"]
    out = engine.convert(tensor, CSR, parallel=2)
    assert engine.cache_stats()["parallel_conversions"] == before + 1
    assert_tensors_bit_identical(
        out, convert(tensor, CSR, backend="vector", parallel=None)
    )
    with pytest.raises(ValueError):
        engine.convert(tensor, CSR, parallel=0)
    with pytest.raises(ValueError):
        engine.convert(tensor, CSR, parallel="sideways")


def test_parallel_falls_back_for_non_chunkable_pairs(engine):
    assert not chunkable(CSR, HASH)
    cells, vals = _random_problem(4, 6, 6, "sparse")
    tensor = reference_build(CSR, (6, 6), cells, vals)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = engine.convert(tensor, HASH, parallel=3)
        engine.convert(tensor, HASH, parallel=3)
    fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(fallback) == 1  # warns once per pair, result still correct
    assert out.to_coo() == dict(zip(cells, vals))
    assert engine.make_chunked(CSR, HASH) is None


def test_routed_conversion_runs_chunked_hops(engine):
    """HASH -> COO -> CSR with workers: the generated vector hop runs on
    the chunk pool, bit-identically to the serial routed conversion."""
    cells, vals = _random_problem(5, 10, 10, "sparse")
    tensor = reference_build(HASH, (10, 10), cells, vals)
    route = engine.route(HASH, CSR, nnz=len(vals))
    serial = engine.convert_via(route, tensor)
    chunked = engine.convert_via(route, tensor, workers=3)
    assert_tensors_bit_identical(serial, chunked)


def test_worker_pools_are_engine_owned_and_cached(engine):
    assert engine.worker_pool(3) is engine.worker_pool(3)
    assert engine.worker_pool(3) is not engine.worker_pool(2)
    assert engine.worker_pool().workers == engine.workers


def test_chunked_converters_cached(engine):
    assert engine.make_chunked(COO, CSR) is engine.make_chunked(COO, CSR)
    assert engine.make_chunked("COO", "CSR") is engine.make_chunked(COO, CSR)


# ----------------------------------------------------------------------
# the rewrite itself


def test_chunked_source_is_rewritten_vector_source():
    generated = plan_chunked(COO, CSR)
    assert generated.backend == "chunked"
    assert "chunked_yield_positions" in generated.source
    assert "chunked_bincount" in generated.source
    assert "chunked_scatter" in generated.source
    assert "group_ranks(" not in generated.source.replace(
        "chunked_group_ranks(", "")
    # dedup pairs route through the chunked dedup helpers
    dedup = plan_chunked(CSR, BCSR(4, 4))
    assert "chunked_unique_first" in dedup.source


def test_rewrite_reports_sites():
    vector = plan_vector(CSR, CSC)
    _, name, sites = rewrite_chunked(vector.source, vector.func_name)
    assert name.endswith("__chunked")
    assert sites["yield"] == 1 and sites["scatter"] == 2


def test_plan_chunked_returns_none_for_scalar_only_pairs():
    assert plan_chunked(CSR, HASH) is None


def test_non_default_options_have_no_chunked_form():
    options = PlanOptions(force_unsequenced_edges=True)
    assert not chunkable(COO, CSR, options)
    # ...but the execution-only threshold field keeps the chunked form
    assert chunkable(COO, CSR, PlanOptions(parallel_threshold=5))


# ----------------------------------------------------------------------
# cost model


def test_cost_model_knows_the_parallel_path():
    model = CostModel()
    assert model.cost("chunked", 10**6) < model.cost("vector", 10**6)
    assert model.cost("vector", 10**6, workers=4) == model.cost("chunked", 10**6)
    assert model.cost("vector", 10**6, workers=1) > model.cost("chunked", 10**6)
    report = {
        "coo_csr": {
            "geomean_speedup": 2.0,
            "cells": [{
                "matrix": "m", "nnz": 10**6, "scalar_seconds": 1.0,
                "vector_seconds": 0.05, "parallel_seconds": 0.02,
            }],
        }
    }
    seeded = CostModel.from_bench_report(report)
    assert seeded.chunked_per_nnz == pytest.approx(0.02 / 10**6)


# ----------------------------------------------------------------------
# warmup accepts specs (regression: every entry point takes spec strings)


def test_warmup_accepts_format_spec_strings():
    eng = ConversionEngine()
    assert eng.warmup([("COO", "CSR"), ("BCSR8x8", "CSR"), ("HASH", "csr")]) == 3
    stats = eng.cache_stats()
    assert stats["compiles"] > 0
    # parallel=True precompiles the chunked kernels of chunkable pairs too
    assert eng.warmup([("coo", "csc")], parallel=True) == 1
    assert eng.make_chunked(COO, CSC) is not None
    with pytest.raises(Exception):
        eng.warmup([("COO", "NO_SUCH_FORMAT")])
    eng.shutdown()


# ----------------------------------------------------------------------
# chunked prefix passes: np.add.at / np.maximum.at (per-chunk partial
# reductions merged by key)


def test_maximum_at_prefix_pass_is_rewritten_for_sky():
    from repro.formats.library import SKY

    generated = plan_chunked(COO, SKY)
    assert "chunked_maximum_at" in generated.source
    assert "np.maximum.at" not in generated.source


def test_add_at_rewrite_on_synthetic_kernel():
    source = (
        "def k(qi, width, n):\n"
        "    import numpy as np\n"
        "    out = np.zeros(n, dtype=np.int64)\n"
        "    np.add.at(out, qi, width)\n"
        "    return out\n"
    )
    rewritten, name, sites = rewrite_chunked(source, "k")
    assert sites["add_at"] == 1
    assert "chunked_add_at(out, qi, width, _pool)" in rewritten


@pytest.mark.parametrize("scalar_values", [False, True],
                         ids=["array-values", "scalar-values"])
def test_chunked_ufunc_at_helpers_bit_identical(tiny_chunk_pool, scalar_values):
    import numpy as np

    from repro.ir.runtime import chunked_add_at, chunked_maximum_at

    rng = np.random.default_rng(9)
    for n in (0, 1, 5, 37, 200):
        index = rng.integers(0, 17, n)
        values = 3 if scalar_values else rng.integers(-4, 60, n)
        serial_add = np.zeros(17, dtype=np.int64)
        np.add.at(serial_add, index, values)
        chunked_add = np.zeros(17, dtype=np.int64)
        chunked_add_at(chunked_add, index, values, tiny_chunk_pool)
        assert np.array_equal(serial_add, chunked_add)

        serial_max = np.zeros(17, dtype=np.int64)
        np.maximum.at(serial_max, index, values)
        chunked_max = np.zeros(17, dtype=np.int64)
        chunked_maximum_at(chunked_max, index, values, tiny_chunk_pool)
        assert np.array_equal(serial_max, chunked_max)


def test_chunked_add_at_float_destination_stays_serial(tiny_chunk_pool):
    """Float accumulation depends on summation order; the helper must run
    the serial ufunc there so results stay bit-identical."""
    import numpy as np

    from repro.ir.runtime import chunked_add_at

    rng = np.random.default_rng(2)
    index = rng.integers(0, 7, 100)
    values = rng.uniform(-1, 1, 100)
    serial = np.zeros(7, dtype=np.float64)
    np.add.at(serial, index, values)
    chunked = np.zeros(7, dtype=np.float64)
    chunked_add_at(chunked, index, values, tiny_chunk_pool)
    assert np.array_equal(serial, chunked)  # bit-identical, not approx


@pytest.mark.parametrize("src", [COO, CSR, DCSR], ids=lambda f: f.name)
def test_chunked_sky_bit_identical(src, engine, tiny_chunk_pool):
    """* -> SKY exercises the chunked np.maximum.at prefix pass end to
    end (skyline row widths are a max= analysis)."""
    from repro.formats.library import SKY

    rng = random.Random(13)
    dims = (18, 18)
    cells = sorted({
        (max(i, j), min(i, j))  # lower-triangular: SKY's domain
        for _ in range(160)
        for i, j in [(rng.randrange(dims[0]), rng.randrange(dims[1]))]
    })
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    tensor = reference_build(src, dims, cells, vals)
    vector = convert(tensor, SKY, backend="vector", parallel=None)
    chunked = engine.make_chunked(src, SKY)
    assert "chunked_maximum_at" in chunked.source
    out = chunked(tensor, tiny_chunk_pool)
    assert_tensors_bit_identical(vector, out)


def test_chunked_add_at_bool_destination_stays_serial(tiny_chunk_pool):
    """numpy forbids subtraction (the merge's dedup step) on booleans, so
    bool destinations must take the serial ufunc path."""
    import numpy as np

    from repro.ir.runtime import chunked_add_at

    rng = np.random.default_rng(4)
    index = rng.integers(0, 9, 120)
    serial = np.zeros(9, dtype=bool)
    np.add.at(serial, index, True)
    chunked = np.zeros(9, dtype=bool)
    chunked_add_at(chunked, index, True, tiny_chunk_pool)
    assert np.array_equal(serial, chunked)
