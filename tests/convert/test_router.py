"""Tests for multi-hop routing: route search, cost model, bridges, and
bit-identity of every routed pair against the direct scalar conversion."""

import random
import time

import numpy as np
import pytest

from repro.convert import (
    ConversionEngine,
    ConversionRoute,
    CostModel,
    PlanOptions,
    find_route,
    make_converter,
    scipy_available,
)
from repro.convert.router import (
    DEFAULT_ROUTE_NNZ,
    Hop,
    bridge_for,
    check_route,
)
from repro.formats import (
    BCSR,
    COO,
    CSC,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
    SKY,
    FormatError,
    make_format,
)
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel
from repro.levels.hashed import HashedLevel
from repro.storage.build import reference_build

# With scipy importable its registered converter wins the bulk COO->CSR /
# CSR->CSC edges; the no-scipy leg keeps the generated vector kernel.
EXT = "external" if scipy_available() else "vector"


def random_cells(rng, dims, count, lower_triangular=False):
    cells = set()
    while len(cells) < count:
        i, j = rng.randrange(dims[0]), rng.randrange(dims[1])
        if lower_triangular and j > i:
            i, j = j, i
        cells.add((i, j))
    cells = sorted(cells)
    rng.shuffle(cells)
    return cells, [round(rng.uniform(0.5, 9.5), 4) for _ in cells]


def assert_identical(a, b):
    assert a.format.signature() == b.format.signature()
    assert set(a.arrays) == set(b.arrays)
    for key in a.arrays:
        assert np.array_equal(a.arrays[key], b.arrays[key]), key
    assert np.array_equal(a.vals, b.vals)
    assert a.metadata == b.metadata


# ----------------------------------------------------------------------
# route search


def test_hash_to_csr_routes_through_coo():
    route = find_route(HASH, CSR)
    assert not route.is_direct
    assert [fmt.name for fmt in route.formats] == ["HASH", "COO", "CSR"]
    assert route.backend_per_hop == ("bridge", EXT)
    assert route.cost < route.direct_cost


def test_route_accepts_spec_strings():
    route = find_route("hash", "csr")
    assert route.src is HASH and route.dst is CSR


def test_vectorizable_pairs_stay_direct():
    for src, dst in [(COO, CSR), (CSR, CSC), (COO, DIA), (BCSR(4, 4), CSR)]:
        route = find_route(src, dst)
        assert route.is_direct
        assert route.backend_per_hop[0] in ("vector", "external")
    # pairs with no registered competitor always stay on the generated kernel
    for src, dst in [(COO, DIA), (BCSR(4, 4), CSR)]:
        assert find_route(src, dst).backend_per_hop == ("vector",)


def test_hash_to_coo_is_a_direct_bridge():
    route = find_route(HASH, COO)
    assert route.is_direct
    assert route.backend_per_hop == ("bridge",)


def test_non_default_options_pin_direct_scalar():
    route = find_route(HASH, CSR, options=PlanOptions(force_unsequenced_edges=True))
    assert route.is_direct
    assert route.backend_per_hop == ("scalar",)


def test_tiny_tensors_route_direct():
    route = find_route(HASH, CSR, nnz=8)
    assert route.is_direct


def test_route_explain_transcript():
    text = find_route(HASH, CSR).explain()
    assert "route HASH -> CSR" in text
    assert "HASH -> COO -> CSR" in text
    assert "[bridge]" in text and f"[{EXT}" in text
    assert "direct scalar" in text
    direct_text = find_route(COO, CSR).explain()
    assert "direct conversion is the estimated optimum" in direct_text


def test_explicit_intermediates_restrict_the_graph():
    route = find_route(HASH, CSR, intermediates=[DIA])
    # no COO available: DIA cannot be reached by bridge, hops stay scalar,
    # so the direct conversion wins
    assert route.is_direct


def test_check_route_rejects_broken_chains():
    broken = ConversionRoute(
        hops=(Hop(HASH, COO, "bridge"), Hop(CSR, CSC, "vector")),
        cost=1.0,
        direct_cost=1.0,
        nnz=100,
        options=PlanOptions(),
    )
    with pytest.raises(FormatError):
        check_route(broken)


# ----------------------------------------------------------------------
# cost model


def test_cost_model_from_bench_report():
    report = {
        "coo_csr": {
            "cells": [
                {"nnz": 1000, "scalar_seconds": 1e-3, "vector_seconds": 5e-5},
                {"nnz": 2000, "scalar_seconds": 2e-3, "vector_seconds": 1e-4},
            ]
        }
    }
    model = CostModel.from_bench_report(report)
    assert model.scalar_per_nnz == pytest.approx(1e-6)
    assert model.vector_per_nnz == pytest.approx(5e-8)
    assert model.bridge_per_nnz == pytest.approx(2.5e-8)
    # degenerate report: defaults survive
    assert CostModel.from_bench_report({}).scalar_per_nnz == CostModel().scalar_per_nnz


def test_cost_model_orders_backends():
    model = CostModel()
    nnz = DEFAULT_ROUTE_NNZ
    assert model.cost("bridge", nnz) < model.cost("vector", nnz)
    assert model.cost("vector", nnz) < model.cost("scalar", nnz)


# ----------------------------------------------------------------------
# bit-identity: every routed pair equals the direct scalar conversion


HASH_TARGETS = [CSR, CSC, DIA, ELL, DCSR, BCSR(4, 4), HICOO(4), COO, SKY]


@pytest.mark.parametrize("dst", HASH_TARGETS, ids=lambda fmt: fmt.name)
def test_routed_hash_pairs_bit_identical_to_direct_scalar(dst):
    rng = random.Random(7)
    dims = (32, 32)
    cells, vals = random_cells(rng, dims, 220, lower_triangular=dst is SKY)
    tensor = reference_build(HASH, dims, cells, vals)
    engine = ConversionEngine()
    route = engine.route(HASH, dst)  # bulk-size default: multi-hop/bridge
    assert "bridge" in route.backend_per_hop
    routed = engine.convert_via(route, tensor)
    direct = make_converter(HASH, dst, backend="scalar")(tensor)
    assert_identical(routed, direct)


def test_every_builtin_pair_routes_and_roundtrips():
    """Route search succeeds for every ordered same-order builtin pair and
    only hash sources leave the direct path."""
    formats = [COO, CSR, CSC, DIA, ELL, SKY, DCSR, HASH, BCSR(4, 4), HICOO(4)]
    for src in formats:
        for dst in formats:
            if src is dst:
                continue
            route = find_route(src, dst)
            assert route.hops[0].src is src and route.hops[-1].dst is dst
            if src is not HASH:
                assert route.is_direct
                assert "bridge" not in route.backend_per_hop


def test_structural_hash_twins_share_the_bridge():
    twin = make_format(
        "HASHTWIN_ROUTER",
        "(i,j) -> (i, j)",
        [DenseLevel(), HashedLevel()],
        inverse_text="(i,j) -> (i, j)",
    )
    assert bridge_for(twin) is not None
    route = find_route(twin, CSR)
    assert not route.is_direct
    assert route.backend_per_hop == ("bridge", EXT)
    rng = random.Random(3)
    cells, vals = random_cells(rng, (24, 24), 150)
    tensor = reference_build(HASH, (24, 24), cells, vals)
    tensor.format = twin  # same structure, different name
    engine = ConversionEngine()
    routed = engine.convert_via(route, tensor)
    direct = engine.make_converter(twin, CSR, backend="scalar")(tensor)
    assert_identical(routed, direct)


# ----------------------------------------------------------------------
# engine integration


def test_engine_convert_auto_routes_large_hash_tensors():
    rng = random.Random(11)
    dims = (64, 64)
    cells, vals = random_cells(rng, dims, 900)
    tensor = reference_build(HASH, dims, cells, vals)
    engine = ConversionEngine()
    auto = engine.convert(tensor, CSR)  # hash table is large enough to route
    assert engine.cache_stats()["routed_conversions"] == 1
    direct = engine.convert(tensor, CSR, route="direct")
    assert engine.cache_stats()["routed_conversions"] == 1
    assert_identical(auto, direct)


def test_engine_convert_explicit_route_object():
    rng = random.Random(13)
    cells, vals = random_cells(rng, (16, 16), 60)
    tensor = reference_build(HASH, (16, 16), cells, vals)
    engine = ConversionEngine()
    route = engine.route(HASH, CSC)
    out = engine.convert(tensor, CSC, route=route)
    assert_identical(out, engine.convert(tensor, CSC, route="direct"))


def test_route_caching_by_structural_pair():
    engine = ConversionEngine()
    assert engine.route(HASH, CSR) is engine.route(HASH, CSR)
    assert engine.route(HASH, CSR, nnz=10) is not engine.route(HASH, CSR)


def test_routed_conversion_is_faster_at_bulk_sizes():
    """The acceptance bar: at 100k+ nnz the routed HASH->CSR conversion
    beats the direct scalar loop (by an order of magnitude in practice;
    asserted at 2x to stay robust on noisy CI runners)."""
    rng = random.Random(17)
    n, count = 1200, 100_000
    cells, vals = random_cells(rng, (n, n), count)
    tensor = reference_build(HASH, (n, n), cells, vals)
    engine = ConversionEngine()
    route = engine.route(HASH, CSR, nnz=tensor.nnz_stored)
    assert not route.is_direct
    direct = engine.make_converter(HASH, CSR, backend="scalar")

    def best_of(fn, reps=2):
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    routed_time = best_of(lambda: engine.convert_via(route, tensor))
    direct_time = best_of(lambda: direct(tensor))
    assert routed_time * 2 < direct_time, (routed_time, direct_time)
    assert_identical(engine.convert_via(route, tensor), direct(tensor))


def test_route_cache_retags_renamed_twins():
    """Routes are cached structurally, but results must come back in the
    exact format object the caller requested (cache-order independent)."""
    twin = make_format(
        "CSRTWIN_ROUTECACHE",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    engine = ConversionEngine()
    first = engine.route(HASH, CSR)  # populates the structural cache entry
    assert first.dst is CSR
    retagged = engine.route(HASH, twin)  # same structure, renamed
    assert retagged.dst is twin
    assert engine.route(HASH, CSR).dst is CSR  # original still intact
    rng = random.Random(23)
    cells, vals = random_cells(rng, (20, 20), 120)
    tensor = reference_build(HASH, (20, 20), cells, vals)
    out = engine.convert_via(retagged, tensor)
    assert out.format is twin


def test_convert_rejects_mismatched_explicit_route():
    engine = ConversionEngine()
    rng = random.Random(29)
    cells, vals = random_cells(rng, (12, 12), 40)
    tensor = reference_build(HASH, (12, 12), cells, vals)
    route = engine.route(HASH, CSR)
    with pytest.raises(ValueError):
        engine.convert(tensor, DIA, route=route)  # route ends at CSR
    # telemetry untouched by the failed call
    assert engine.cache_stats()["conversions"] == 0
    assert engine.pair_counts() == {}


def test_rebind_endpoints_validates_structure():
    from repro.convert import rebind_endpoints

    route = find_route(HASH, CSR)
    with pytest.raises(ValueError):
        rebind_endpoints(route, HASH, DIA)
    assert rebind_endpoints(route, HASH, CSR) is route  # no-op fast path


def test_beats_direct_predicate():
    assert find_route(HASH, CSR).beats_direct  # multi-hop
    assert find_route(HASH, COO).beats_direct  # direct bridge
    assert not find_route(COO, DIA).beats_direct  # direct generated kernel
    if scipy_available():
        # a registered converter winning the direct edge beats the
        # generated kernel even though the route stays single-hop
        assert find_route(COO, CSR).beats_direct
