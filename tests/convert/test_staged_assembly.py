"""Tests for staged (multi-group) assembly: DCSR and CSF targets.

Edge insertion below explicitly stored parent coordinates splits the
assembly into groups, each with its own pass over the source and a
position memo carrying nonzeros across group boundaries.
"""

import random

import pytest

from repro.convert import convert, generated_source
from repro.convert.planner import ConversionPlanner
from repro.formats.library import BCSR, COO, COO3, CSC, CSF, CSR, DCSR, DIA, ELL
from repro.storage.build import reference_build


def _hypersparse(seed=12, nrows=50, ncols=60, rows=6, per_row=2):
    rng = random.Random(seed)
    cells = []
    for r in rng.sample(range(nrows), rows):
        cells += [(r, c) for c in rng.sample(range(ncols), per_row)]
    return (nrows, ncols), cells, [float(n + 1) for n in range(len(cells))]


def test_group_partitioning():
    assert ConversionPlanner(COO, CSR)._groups() == [[0, 1]]
    assert ConversionPlanner(COO, DIA)._groups() == [[0, 1, 2]]
    assert ConversionPlanner(CSR, BCSR(2, 2))._groups() == [[0, 1, 2, 3]]
    assert ConversionPlanner(COO, DCSR)._groups() == [[0], [1]]
    assert ConversionPlanner(COO3, CSF)._groups() == [[0, 1], [2]]


@pytest.mark.parametrize("src", [COO, CSR, CSC, DIA, ELL], ids=lambda f: f.name)
def test_dcsr_target_from_all_sources(src):
    dims, cells, vals = _hypersparse()
    tensor = reference_build(src, dims, cells, vals)
    out = convert(tensor, DCSR)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))
    # hypersparse: only the nonempty rows are stored
    assert len(out.array(0, "crd")) == len({i for i, _ in cells})


def test_dcsr_as_source():
    dims, cells, vals = _hypersparse(seed=3)
    dcsr = convert(reference_build(COO, dims, cells, vals), DCSR)
    for dst in [COO, CSR, CSC, DIA, ELL]:
        out = convert(dcsr, dst)
        out.check()
        assert out.to_coo() == dict(zip(cells, vals))


def test_dcsr_row_pos_structure():
    dims, cells, vals = _hypersparse(seed=5)
    out = convert(reference_build(COO, dims, cells, vals), DCSR)
    row_pos = out.array(0, "pos")
    assert row_pos[0] == 0 and row_pos[1] == len({i for i, _ in cells})
    col_pos = out.array(1, "pos")
    assert col_pos[-1] == len(cells)
    # rows are grouped (each stored once) but not necessarily sorted —
    # the same convention as the paper's unsorted CSR outputs
    stored_rows = list(out.array(0, "crd"))
    assert sorted(stored_rows) == sorted({i for i, _ in cells})


def test_dcsr_generated_code_has_two_passes():
    source = generated_source(COO, DCSR)
    assert source.count("# assembly: coordinate insertion") == 2
    assert "memo1" in source and "src_idx" in source


def test_memo_sized_by_source_paths():
    source = generated_source(COO, DCSR)
    # COO's stored-path count is pos[1]
    assert "memo1 = np.empty(A1_pos[1]" in source
    source = generated_source(CSR, DCSR)
    # CSR's is pos[N1]
    assert "memo1 = np.empty(A2_pos[N1]" in source


def test_csf_from_csr_like_third_order_sources():
    rng = random.Random(8)
    cells = rng.sample(
        [(i, j, k) for i in range(6) for j in range(5) for k in range(4)], 30
    )
    vals = [float(n + 1) for n in range(30)]
    csf = convert(reference_build(COO3, (6, 5, 4), cells, vals), CSF)
    csf.check()
    # fiber structure: each (i, j) fiber stored exactly once per row
    pos1 = csf.array(1, "pos")
    crd1 = csf.array(1, "crd")
    for i in range(6):
        segment = list(crd1[pos1[i]:pos1[i + 1]])
        assert len(segment) == len(set(segment))
        assert set(segment) == {j for (r, j, _) in cells if r == i}


def test_staged_assembly_with_padded_source():
    """DIA source (explicit zeros) into a staged target: the zero guard
    must keep memo indices aligned across both passes."""
    dims, cells, vals = _hypersparse(seed=17, nrows=12, ncols=12, rows=4)
    dia = reference_build(DIA, dims, cells, vals)
    out = convert(dia, DCSR)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_empty_tensor_staged():
    out = convert(reference_build(COO, (5, 5), [], []), DCSR)
    out.check()
    assert out.to_coo() == {}


def test_single_dense_column_staged():
    cells = [(i, 0) for i in range(8)]
    vals = [float(i) + 1 for i in range(8)]
    out = convert(reference_build(COO, (8, 3), cells, vals), DCSR)
    assert out.to_coo() == dict(zip(cells, vals))
    assert len(out.array(0, "crd")) == 8
