"""Structural feature sampling: exactness, degenerate streams, memoing."""


import numpy as np

from repro.convert import StructuralFeatures, default_features, sample_features
from repro.convert.features import _CACHE_ATTR
from repro.formats import COO, CSR, HASH
from repro.storage.build import reference_build
from repro.storage.tensor import Tensor


def _coo(cells, dims=(8, 8)):
    return reference_build(
        COO, dims, cells, [1.0 + i for i in range(len(cells))]
    )


# ----------------------------------------------------------------------
# degenerate streams


def test_empty_tensor_samples_cleanly():
    features = sample_features(_coo([]))
    assert features.nnz == 0
    assert features.sortedness == 1.0  # vacuously sorted
    assert features.density == 0.0


def test_single_nonzero_samples_cleanly():
    features = sample_features(_coo([(3, 4)]))
    assert features.nnz == 1
    assert features.sortedness == 1.0  # no adjacent pair to disagree
    assert features.density == 1.0 / 64


# ----------------------------------------------------------------------
# exact sortedness


def test_sortedness_is_exact_not_sampled():
    assert sample_features(_coo([(0, 0), (0, 1), (2, 3)])).sortedness == 1.0
    # pairs: (0,2) up, (2,1) down, (1,3) up -> exactly 2/3
    features = sample_features(_coo([(0, 0), (2, 0), (1, 0), (3, 0)]))
    assert features.sortedness == 2.0 / 3.0
    # one out-of-order element in a long stream still registers
    cells = [(0, j) for j in range(100)]
    cells[50], cells[51] = cells[51], cells[50]
    assert sample_features(_coo(cells, dims=(8, 128))).sortedness < 1.0


def test_sortedness_ties_break_on_inner_level():
    # equal rows: the column stream decides the pair's order
    assert sample_features(_coo([(1, 5), (1, 2)])).sortedness == 0.0
    assert sample_features(_coo([(1, 2), (1, 5)])).sortedness == 1.0


def test_pos_segment_boundaries_reset_the_comparison():
    # CSR rows restart the column stream: (0,7) -> (1,0) is not disorder
    csr = reference_build(
        CSR, (2, 8), [(0, 3), (0, 7), (1, 0), (1, 4)], [1.0, 2.0, 3.0, 4.0]
    )
    assert sample_features(csr).sortedness == 1.0


def test_hash_sentinels_count_as_unsorted():
    tensor = reference_build(
        HASH, (8, 8), [(0, 1), (2, 3), (5, 5)], [1.0, 2.0, 3.0]
    )
    crd = np.asarray(tensor.arrays[(1, "crd")])
    assert (crd < 0).any()  # hashed layouts keep -1 empty slots
    # pairs touching an empty slot are conservatively counted unsorted
    assert sample_features(tensor).sortedness < 1.0


# ----------------------------------------------------------------------
# density and skew


def test_density_and_row_skew():
    # row 0 holds 3 of 4 components: skew = 3 / (4/2) = 1.5
    features = sample_features(_coo([(0, 0), (0, 1), (0, 2), (1, 0)]))
    assert features.density == 4 / 64
    assert features.row_skew == 1.5


# ----------------------------------------------------------------------
# memoization


def test_features_memoized_on_the_tensor_instance():
    tensor = _coo([(0, 1), (2, 3)])
    first = sample_features(tensor)
    assert sample_features(tensor) is first
    assert getattr(tensor, _CACHE_ATTR)[1] is first
    # rebinding a component array invalidates the memo
    rebound = Tensor(
        tensor.format, tensor.dims,
        {key: np.array(arr) for key, arr in tensor.arrays.items()},
        dict(tensor.metadata), np.array(tensor.vals),
    )
    assert sample_features(rebound) is not first
    assert sample_features(rebound) == first  # same facts, fresh sample


# ----------------------------------------------------------------------
# route-cache keys and planning defaults


def test_key_quantizes_into_coarse_buckets():
    exact = StructuralFeatures(100, 1.0, 0.1, 1.0)
    near = StructuralFeatures(100, 0.999, 0.1, 1.0)
    assert exact.key() != near.key()  # the bit-identity guard is exact
    jitter_a = StructuralFeatures(100, 0.51, 0.10, 2.0)
    jitter_b = StructuralFeatures(100, 0.52, 0.99, 3.0)
    assert jitter_a.key() == jitter_b.key()  # jitter cannot fragment
    skewed = StructuralFeatures(100, 0.51, 0.10, 1000.0)
    assert jitter_a.key() != skewed.key()


def test_default_features_are_optimistic():
    features = default_features(12_345)
    assert features.nnz == 12_345
    assert features.sortedness == 1.0
    assert features.row_skew == 1.0


def test_roundtrip_dict():
    features = sample_features(_coo([(0, 0), (2, 1), (1, 7)]))
    assert StructuralFeatures.from_dict(features.to_dict()) == features
    assert "sortedness" in features.describe()
