"""Unit tests for source-loop emission and counter planning."""

import pytest

from repro.convert.context import ConversionContext, PlanError
from repro.convert.iterate import CounterPlan, SourceLoopEmitter
from repro.formats.library import COO, COO3, CSC, CSF, CSR, DIA, ELL
from repro.ir import builder as b
from repro.ir.nodes import Const, Pass, Var
from repro.ir.printer import print_stmt
from repro.remap.parser import parse_remap


def _emitter(src, dst):
    return SourceLoopEmitter(ConversionContext(src, dst))


def test_canonical_exprs_identity_source():
    emitter = _emitter(CSR, CSR)
    coords = [Var("a"), Var("b")]
    assert emitter.canonical_exprs(coords) == [Var("a"), Var("b")]


def test_canonical_exprs_transposed_source():
    emitter = _emitter(CSC, CSR)
    coords = [Var("a"), Var("b")]
    # CSC level order is (j, i): canonical i is the second level coord
    assert emitter.canonical_exprs(coords) == [Var("b"), Var("a")]


def test_canonical_exprs_dia_source():
    emitter = _emitter(DIA, CSR)
    coords = [Var("k"), Var("r"), Var("c")]
    i, j = emitter.canonical_exprs(coords)
    assert i == Var("r")
    assert print_stmt(b.assign("x", j)) == "x = k + r"


def test_emit_full_nest_shape():
    emitter = _emitter(CSR, CSR)
    code = print_stmt(
        emitter.emit(lambda canonical, pos, coords: Pass())
    )
    assert "for i in range(N1):" in code
    assert "for p2 in range(A2_pos[i], A2_pos[i + 1]):" in code


def test_padded_source_gets_zero_guard():
    emitter = _emitter(ELL, CSR)
    code = print_stmt(emitter.emit(lambda c, p, lc: b.assign("x", 1)))
    assert "!= 0" in code
    # and can be overridden
    code = print_stmt(
        emitter.emit(lambda c, p, lc: b.assign("x", 1), skip_zeros=False)
    )
    assert "!= 0" not in code


def test_level_prologue_hook_placement():
    emitter = _emitter(CSR, ELL)
    code = print_stmt(
        emitter.emit(
            lambda c, p, lc: b.assign("x", 1),
            level_prologue={1: lambda coords: [b.assign("count", 0)]},
        )
    )
    lines = [line.strip() for line in code.splitlines()]
    reset = lines.index("count = 0")
    inner = next(i for i, l in enumerate(lines) if l.startswith("for p2"))
    assert reset < inner  # reset precedes the inner loop, inside the outer


def test_emit_prefix_stops_early():
    emitter = _emitter(CSR, CSR)
    code = print_stmt(emitter.emit_prefix(1, lambda coords, pos: Pass()))
    assert "A2_pos" not in code  # inner level untouched
    assert "for i in range(N1):" in code


def test_emit_width_csr():
    emitter = _emitter(CSR, CSR)
    _, width = emitter.emit_width(1, Var("i"))
    assert print_stmt(b.assign("w", width)) == "w = A2_pos[i + 1] - A2_pos[i]"


def test_emit_width_coo_root():
    emitter = _emitter(COO, CSR)
    _, width = emitter.emit_width(0, Const(0))
    assert print_stmt(b.assign("w", width)) == "w = A1_pos[1] - A1_pos[0]"


def test_emit_width_composes_nested_compressed():
    """CSF: paths below row i span pos2[pos1[i]] .. pos2[pos1[i+1]]."""
    emitter = _emitter(CSF, COO3)
    _, width = emitter.emit_width(1, Var("i"))
    text = print_stmt(b.assign("w", width))
    assert text == "w = A3_pos[A2_pos[i + 1]] - A3_pos[A2_pos[i]]"


def test_emit_width_rejects_dense_remainder():
    emitter = _emitter(CSR, CSR)
    with pytest.raises(PlanError):
        emitter.emit_width(0, Const(0))  # would need widths through dense


# ---------------------------------------------------------------------------
# counter planning
# ---------------------------------------------------------------------------


def _counter_plan(src, force=False):
    ctx = ConversionContext(src, ELL)
    return ctx, CounterPlan(ctx, ELL.remap, force_arrays=force)


def test_counter_scalar_for_ordered_csr():
    _, plan = _counter_plan(CSR)
    assert [impl.mode for impl in plan.impls] == ["scalar"]
    assert plan.impls[0].reset_level == 1
    assert plan.init_stmts() == []
    assert 1 in plan.level_prologues()


def test_counter_array_for_unordered_coo():
    _, plan = _counter_plan(COO)
    assert [impl.mode for impl in plan.impls] == ["array"]
    init = plan.init_stmts()
    assert len(init) == 1 and "N1" in print_stmt(init[0])


def test_counter_array_for_csc_nonprefix():
    # CSC iterates columns first; the counter key (i) is not a level
    # prefix, so the scalar register is invalid.
    _, plan = _counter_plan(CSC)
    assert [impl.mode for impl in plan.impls] == ["array"]


def test_counter_force_arrays():
    _, plan = _counter_plan(CSR, force=True)
    assert [impl.mode for impl in plan.impls] == ["array"]


def test_counter_fetch_code():
    ctx, plan = _counter_plan(CSR)
    stmts, env = plan.fetch([Var("i"), Var("j")])
    text = "\n".join(print_stmt(s) for s in stmts)
    assert "k = count" in text and "count += 1" in text
    counter = parse_remap("(i,j) -> (#i, i, j)").counters()[0]
    assert counter in env


def test_counter_fetch_array_indexing():
    ctx, plan = _counter_plan(COO)
    stmts, _ = plan.fetch([Var("i"), Var("j")])
    text = "\n".join(print_stmt(s) for s in stmts)
    assert "counter[i]" in text and "counter[i] += 1" in text


def test_global_counter_is_scalar_register():
    fmt_remap = parse_remap("(i,j) -> (#, i, j)")
    ctx = ConversionContext(CSR, ELL)
    plan = CounterPlan(ctx, fmt_remap)
    # empty key: the prefix is the empty prefix — always ordered
    assert plan.impls[0].mode == "scalar"
    assert plan.impls[0].reset_level == 0
