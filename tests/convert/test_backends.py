"""Backend equivalence: the vector (bulk numpy) lowering must produce
*bit-identical* output arrays to the scalar (loop) lowering.

This is the contract that lets the planner pick backends freely: same
dtypes, same array contents, same metadata, for every registered format
pair — on adversarial random inputs (empty, dense, rectangular) and on
the synthetic benchmark suite matrices.
"""

import random

import numpy as np
import pytest

from repro.convert import (
    convert,
    generated_source,
    make_converter,
    resolve_backend,
    verify_all_pairs,
)
from repro.convert.planner import PlanOptions
from repro.formats.format import make_format
from repro.formats.library import BCSR, COO, CSC, CSR, DCSR, DIA, ELL, HICOO
from repro.ir.runtime import stable_order
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel
from repro.matrices.suite import get_matrix
from repro.storage.build import reference_build

VECTOR_FORMATS = [COO, CSR, CSC, DIA, ELL]
FALLBACK_FORMATS = [BCSR(2, 2), HICOO(2), DCSR]


def assert_tensors_bit_identical(a, b):
    assert a.dims == b.dims
    assert a.metadata == b.metadata
    assert set(a.arrays) == set(b.arrays)
    for key in a.arrays:
        left, right = a.arrays[key], b.arrays[key]
        assert left.dtype == right.dtype, f"{key}: {left.dtype} != {right.dtype}"
        assert np.array_equal(left, right), f"{key}: arrays differ"
    assert a.vals.dtype == b.vals.dtype
    assert np.array_equal(a.vals, b.vals)


def _random_problem(seed, m, n, style):
    rng = random.Random(seed)
    capacity = m * n
    count = {"empty": 0, "dense": capacity, "sparse": rng.randint(1, capacity)}[style]
    cells = rng.sample([(i, j) for i in range(m) for j in range(n)], count)
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    return cells, vals


@pytest.mark.parametrize("src", VECTOR_FORMATS, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", VECTOR_FORMATS, ids=lambda f: f.name)
def test_backends_bit_identical_all_pairs(src, dst):
    for seed, (m, n) in enumerate([(7, 11), (11, 7), (1, 9), (8, 8)]):
        for style in ("empty", "dense", "sparse"):
            cells, vals = _random_problem(seed, m, n, style)
            tensor = reference_build(src, (m, n), cells, vals)
            scalar = convert(tensor, dst, backend="scalar")
            vector = convert(tensor, dst, backend="vector")
            assert vector.to_coo() == dict(zip(cells, vals))
            assert_tensors_bit_identical(scalar, vector)


@pytest.mark.parametrize("matrix_name", ["jnlbrng1", "scircuit", "cant"])
@pytest.mark.parametrize(
    "pair",
    [(COO, CSR), (CSR, CSC), (COO, DIA), (CSR, ELL), (CSC, DIA)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_backends_bit_identical_on_suite_matrices(matrix_name, pair):
    src, dst = pair
    entry = get_matrix(matrix_name, scale=0.05)
    tensor = entry.tensor(src)
    scalar = convert(tensor, dst, backend="scalar")
    vector = convert(tensor, dst, backend="vector")
    assert_tensors_bit_identical(scalar, vector)


def test_vector_backend_passes_randomized_verification():
    report = verify_all_pairs(VECTOR_FORMATS, trials=6, max_dim=7, backend="vector")
    assert len(report) == len(VECTOR_FORMATS) ** 2
    assert all(checked > 0 for _, _, checked in report)


def test_resolve_backend_selection():
    assert resolve_backend(COO, CSR) == "vector"
    assert resolve_backend(CSR, CSC, backend="auto") == "vector"
    assert resolve_backend(COO, CSR, backend="scalar") == "scalar"
    # non-vectorizable pairs fall back, even on explicit request
    assert resolve_backend(CSR, BCSR(2, 2)) == "scalar"
    assert resolve_backend(CSR, BCSR(2, 2), backend="vector") == "scalar"
    # ablation options select scalar code shapes: scalar only
    assert resolve_backend(COO, CSR, PlanOptions(force_unsequenced_edges=True)) == "scalar"


def test_structural_match_vectorizes_renamed_format():
    """Backend selection is structural, not by format name."""
    my_csr = make_format(
        "MyRowMajor",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    assert resolve_backend(COO, my_csr) == "vector"
    cells, vals = _random_problem(3, 6, 5, "sparse")
    tensor = reference_build(COO, (6, 5), cells, vals)
    out = convert(tensor, my_csr, backend="vector")
    assert out.to_coo() == dict(zip(cells, vals))


@pytest.mark.parametrize("dst", FALLBACK_FORMATS, ids=lambda f: f.name)
def test_vector_request_falls_back_to_scalar(dst):
    cells, vals = _random_problem(1, 6, 6, "sparse")
    tensor = reference_build(CSR, (6, 6), cells, vals)
    converter = make_converter(CSR, dst, backend="vector")
    assert converter.backend == "scalar"  # fell back
    out = converter(tensor)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_both_backends_keep_source_inspectable():
    scalar = make_converter(COO, CSR, backend="scalar")
    vector = make_converter(COO, CSR, backend="vector")
    assert scalar.backend == "scalar" and "for " in scalar.source
    assert vector.backend == "vector" and "np.bincount" in vector.source
    assert scalar.source != vector.source
    # both spellings reachable through generated_source too
    assert generated_source(COO, CSR) == scalar.source
    assert generated_source(COO, CSR, backend="vector") == vector.source


def test_backends_cached_separately():
    scalar = make_converter(CSR, DIA, backend="scalar")
    vector = make_converter(CSR, DIA, backend="vector")
    auto = make_converter(CSR, DIA, backend="auto")
    assert scalar is not vector
    assert auto is vector  # auto resolves to the vector cache entry


def test_stable_order_matches_stable_argsort():
    rng = np.random.default_rng(0)
    for n in (0, 1, 17, 1000):
        keys = rng.integers(0, 50, size=n).astype(np.int64)
        got = stable_order(keys)
        want = np.argsort(keys, kind="stable")
        assert np.array_equal(got, want)
    # negative keys take the argsort fallback and stay correct
    keys = np.array([3, -1, 2, -1, 3], dtype=np.int64)
    assert np.array_equal(stable_order(keys), np.argsort(keys, kind="stable"))
