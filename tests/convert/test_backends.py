"""Backend equivalence: the vector (bulk numpy) lowering must produce
*bit-identical* output arrays to the scalar (loop) lowering.

This is the contract that lets the planner pick backends freely: same
dtypes, same array contents, same metadata, for every registered format
pair — on adversarial random inputs (empty, dense, rectangular) and on
the synthetic benchmark suite matrices.
"""

import random
import warnings

import numpy as np
import pytest

from repro.convert import (
    convert,
    generated_source,
    make_converter,
    resolve_backend,
    verify_all_pairs,
)
from repro.convert.planner import PlanOptions, _FALLBACK_WARNED
from repro.formats.format import make_format
from repro.formats.library import (
    BCSR,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
)
from repro.ir.runtime import group_ranks, stable_order, unique_first
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel
from repro.matrices.suite import get_matrix
from repro.storage.build import reference_build

VECTOR_FORMATS = [COO, CSR, CSC, DIA, ELL]
#: formerly scalar-only pairs that the per-level lowering newly vectorizes
EXTENDED_FORMATS = [BCSR(2, 2), DCSR, HICOO(2)]
#: the only library format without the vector-emission protocol
#: formats that fall back to scalar as a *source* (hashed gathers stay
#: scalar; as destinations they assemble in bulk via hashed_bulk_insert)
FALLBACK_SOURCES = [HASH]


def assert_tensors_bit_identical(a, b):
    assert a.dims == b.dims
    assert a.metadata == b.metadata
    assert set(a.arrays) == set(b.arrays)
    for key in a.arrays:
        left, right = a.arrays[key], b.arrays[key]
        assert left.dtype == right.dtype, f"{key}: {left.dtype} != {right.dtype}"
        assert np.array_equal(left, right), f"{key}: arrays differ"
    assert a.vals.dtype == b.vals.dtype
    assert np.array_equal(a.vals, b.vals)


def _random_problem(seed, m, n, style):
    rng = random.Random(seed)
    capacity = m * n
    count = {"empty": 0, "dense": capacity, "sparse": rng.randint(1, capacity)}[style]
    cells = rng.sample([(i, j) for i in range(m) for j in range(n)], count)
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    return cells, vals


@pytest.mark.parametrize("src", VECTOR_FORMATS, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", VECTOR_FORMATS, ids=lambda f: f.name)
def test_backends_bit_identical_all_pairs(src, dst):
    for seed, (m, n) in enumerate([(7, 11), (11, 7), (1, 9), (8, 8)]):
        for style in ("empty", "dense", "sparse"):
            cells, vals = _random_problem(seed, m, n, style)
            tensor = reference_build(src, (m, n), cells, vals)
            scalar = convert(tensor, dst, backend="scalar")
            vector = convert(tensor, dst, backend="vector")
            assert vector.to_coo() == dict(zip(cells, vals))
            assert_tensors_bit_identical(scalar, vector)


@pytest.mark.parametrize("src", EXTENDED_FORMATS, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", EXTENDED_FORMATS + [CSR, COO], ids=lambda f: f.name)
def test_backends_bit_identical_extended_formats(src, dst):
    """BCSR / DCSR / HiCOO vectorize through the per-level lowering —
    no structural allowlist — and stay bit-identical to scalar."""
    assert resolve_backend(src, dst) == "vector"
    for seed, (m, n) in enumerate([(6, 8), (8, 6), (1, 7)]):
        for style in ("empty", "dense", "sparse"):
            cells, vals = _random_problem(seed, m, n, style)
            tensor = reference_build(src, (m, n), cells, vals)
            scalar = convert(tensor, dst, backend="scalar")
            vector = convert(tensor, dst, backend="vector")
            assert vector.to_coo() == dict(zip(cells, vals))
            assert_tensors_bit_identical(scalar, vector)


@pytest.mark.parametrize(
    "pair",
    [(COO3, CSF), (CSF, COO3), (CSF, CSF), (COO3, COO3)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_backends_bit_identical_third_order(pair):
    """CSF / COO3 third-order conversions resolve to the vector backend
    through the leaf singleton / staged compressed emitters."""
    src, dst = pair
    assert resolve_backend(src, dst) == "vector"
    rng = random.Random(11)
    dims = (4, 5, 6)
    cells = rng.sample(
        [(i, j, k) for i in range(4) for j in range(5) for k in range(6)], 37
    )
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    tensor = reference_build(src, dims, cells, vals)
    scalar = convert(tensor, dst, backend="scalar")
    vector = convert(tensor, dst, backend="vector")
    assert vector.to_coo() == dict(zip(cells, vals))
    assert_tensors_bit_identical(scalar, vector)


@pytest.mark.parametrize("matrix_name", ["jnlbrng1", "scircuit", "cant"])
@pytest.mark.parametrize(
    "pair",
    [(COO, CSR), (CSR, CSC), (COO, DIA), (CSR, ELL), (CSC, DIA)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_backends_bit_identical_on_suite_matrices(matrix_name, pair):
    src, dst = pair
    entry = get_matrix(matrix_name, scale=0.05)
    tensor = entry.tensor(src)
    scalar = convert(tensor, dst, backend="scalar")
    vector = convert(tensor, dst, backend="vector")
    assert_tensors_bit_identical(scalar, vector)


def test_every_capable_library_pair_actually_plans_vector():
    """`resolve_backend` promises are kept: every library pair whose
    levels report vector capability really lowers through the vector
    backend (no silent scalar fallback inside plan_vector)."""
    from repro.formats.library import BUILTIN_FORMATS

    formats = dict(BUILTIN_FORMATS)
    formats["BCSR4x4"] = BCSR(4, 4)
    formats["HICOO4"] = HICOO(4)
    for src in formats.values():
        for dst in formats.values():
            if src.order != dst.order:
                continue
            if resolve_backend(src, dst) != "vector":
                assert "hashed" in {
                    level.name for level in src.levels + dst.levels
                }, f"{src.name}->{dst.name} unexpectedly scalar"
                continue
            converter = make_converter(src, dst, backend="vector")
            assert converter.backend == "vector", f"{src.name}->{dst.name}"


def test_vector_backend_passes_randomized_verification():
    report = verify_all_pairs(VECTOR_FORMATS, trials=6, max_dim=7, backend="vector")
    assert len(report) == len(VECTOR_FORMATS) ** 2
    assert all(checked > 0 for _, _, checked in report)


def test_resolve_backend_selection():
    assert resolve_backend(COO, CSR) == "vector"
    assert resolve_backend(CSR, CSC, backend="auto") == "vector"
    assert resolve_backend(COO, CSR, backend="scalar") == "scalar"
    # capability is asked of the levels, not read off an allowlist:
    # blocked/hypersparse/third-order formats all resolve to vector
    assert resolve_backend(BCSR(2, 2), CSR) == "vector"
    assert resolve_backend(CSR, BCSR(2, 2), backend="vector") == "vector"
    assert resolve_backend(DCSR, CSR) == "vector"
    assert resolve_backend(COO3, CSF) == "vector"
    # hashed assembles in bulk as a destination (hashed_bulk_insert)...
    assert resolve_backend(CSR, HASH) == "vector"
    # ...but its slot gathers stay scalar as a source
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert resolve_backend(HASH, CSR, backend="vector") == "scalar"
    # ablation options select scalar code shapes: scalar only
    assert resolve_backend(COO, CSR, PlanOptions(force_unsequenced_edges=True)) == "scalar"


def test_structural_match_vectorizes_renamed_format():
    """Backend selection is structural, not by format name."""
    my_csr = make_format(
        "MyRowMajor",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    assert resolve_backend(COO, my_csr) == "vector"
    cells, vals = _random_problem(3, 6, 5, "sparse")
    tensor = reference_build(COO, (6, 5), cells, vals)
    out = convert(tensor, my_csr, backend="vector")
    assert out.to_coo() == dict(zip(cells, vals))


def test_renamed_format_shares_kernel_cache_entry():
    """Structurally-identical renamed formats share one compiled kernel
    (the cache is keyed by repro.convert.planner.structural_key)."""
    my_csr = make_format(
        "MyRowMajor2",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    for backend in ("vector", "scalar"):
        renamed = make_converter(COO, my_csr, backend=backend)
        canonical = make_converter(COO, CSR, backend=backend)
        assert renamed.func is canonical.func
        assert renamed.source == canonical.source
    # ...while the returned converters still carry the requested formats
    assert make_converter(COO, my_csr).dst_format.name == "MyRowMajor2"
    # and a converter compiled for CSR accepts the structural twin
    from repro.storage.tensor import Tensor

    cells, vals = _random_problem(5, 4, 4, "sparse")
    built = reference_build(CSR, (4, 4), cells, vals)
    twin = Tensor(my_csr, built.dims, built.arrays, built.metadata, built.vals)
    out = make_converter(CSR, CSC)(twin)
    assert out.to_coo() == dict(zip(cells, vals))


@pytest.mark.parametrize("src", FALLBACK_SOURCES, ids=lambda f: f.name)
def test_vector_request_falls_back_to_scalar(src):
    cells, vals = _random_problem(1, 6, 6, "sparse")
    tensor = reference_build(src, (6, 6), cells, vals)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        converter = make_converter(src, CSR, backend="vector")
    assert converter.backend == "scalar"  # fell back
    out = converter(tensor)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


@pytest.mark.parametrize(
    "options",
    [
        PlanOptions(force_unsequenced_edges=True),
        PlanOptions(force_counter_arrays=True),
        PlanOptions(disable_width_count=True),
        PlanOptions(skip_src_zeros=False),
    ],
    ids=["unseq_edges", "counter_arrays", "no_width_count", "keep_zeros"],
)
def test_non_default_options_stay_scalar_and_warn_once(options):
    """Non-default PlanOptions select scalar code shapes: the resolver
    falls back (even on explicit vector requests) and warns exactly once
    per pair."""
    assert resolve_backend(COO, CSR, options) == "scalar"
    _FALLBACK_WARNED.clear()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_backend(COO, CSR, options, backend="vector") == "scalar"
        assert resolve_backend(COO, CSR, options, backend="vector") == "scalar"
    fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(fallback) == 1
    assert "falling back to scalar" in str(fallback[0].message)
    # the fallback still produces a correct scalar routine
    cells, vals = _random_problem(2, 5, 5, "sparse")
    tensor = reference_build(COO, (5, 5), cells, vals)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        converter = make_converter(COO, CSR, options, backend="vector")
    assert converter.backend == "scalar"
    assert converter(tensor).to_coo() == dict(zip(cells, vals))


def test_both_backends_keep_source_inspectable():
    scalar = make_converter(COO, CSR, backend="scalar")
    vector = make_converter(COO, CSR, backend="vector")
    assert scalar.backend == "scalar" and "for " in scalar.source
    assert vector.backend == "vector" and "np.bincount" in vector.source
    assert scalar.source != vector.source
    # both spellings reachable through generated_source too
    assert generated_source(COO, CSR) == scalar.source
    assert generated_source(COO, CSR, backend="vector") == vector.source


def test_backends_cached_separately():
    scalar = make_converter(CSR, DIA, backend="scalar")
    vector = make_converter(CSR, DIA, backend="vector")
    auto = make_converter(CSR, DIA, backend="auto")
    assert scalar is not vector
    assert auto is vector  # auto resolves to the vector cache entry


def test_stable_order_matches_stable_argsort():
    rng = np.random.default_rng(0)
    for n in (0, 1, 17, 1000):
        keys = rng.integers(0, 50, size=n).astype(np.int64)
        got = stable_order(keys)
        want = np.argsort(keys, kind="stable")
        assert np.array_equal(got, want)
    # negative keys take the argsort fallback and stay correct
    keys = np.array([3, -1, 2, -1, 3], dtype=np.int64)
    assert np.array_equal(stable_order(keys), np.argsort(keys, kind="stable"))


def test_group_ranks_matches_sequential_counting():
    rng = np.random.default_rng(1)
    for n in (0, 1, 17, 1000):
        keys = rng.integers(0, 7, size=n).astype(np.int64)
        got = group_ranks(keys)
        counts = {}
        want = np.empty(n, dtype=np.int64)
        for idx, key in enumerate(keys):
            want[idx] = counts.get(int(key), 0)
            counts[int(key)] = want[idx] + 1
        assert np.array_equal(got, want)


def test_unique_first_matches_sequential_dedup():
    rng = np.random.default_rng(2)
    for n in (0, 1, 17, 1000):
        keys = rng.integers(0, 9, size=n).astype(np.int64)
        got = unique_first(keys)
        seen, want = set(), []
        for idx, key in enumerate(keys):
            if int(key) not in seen:
                seen.add(int(key))
                want.append(idx)
        assert np.array_equal(got, np.array(want, dtype=np.int64))
