"""Hashed destinations vectorize: bulk open-addressing inserts.

Three contracts from the HASH vectorization:

* ``hashed_bulk_insert`` places every nonzero exactly where the scalar
  probe loop would — bit-identical table and positions — on random
  streams with collisions, duplicates and wraparound;
* X→HASH conversions are bit-identical between the scalar and vector
  backends for every vectorizable source;
* hashed pairs stay off the chunked executor (placement depends on the
  global nonzero order, which chunk-local replays cannot reproduce).
"""

import warnings

import numpy as np
import pytest

from repro.convert import make_converter, resolve_backend
from repro.convert.chunked import chunkable
from repro.formats.library import COO, CSC, CSR, DIA, ELL, HASH
from repro.ir.runtime import hashed_bulk_insert
from repro.storage.build import reference_build

from .test_backends import assert_tensors_bit_identical


def _sequential_insert(table, base, home, coord, width):
    """The scalar probe loop, one nonzero at a time, in stream order."""
    n = len(coord)
    out = np.empty(n, dtype=np.int64)
    base = np.broadcast_to(np.asarray(base, dtype=np.int64), (n,))
    for i in range(n):
        s = int(home[i])
        p = int(base[i]) + s
        while table[p] >= 0 and table[p] != coord[i]:
            s = (s + 1) % width
            p = int(base[i]) + s
        table[p] = coord[i]
        out[i] = p
    return out


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("parents,width", [(1, 16), (4, 8), (7, 32)])
def test_bulk_insert_replays_sequential_placement(seed, parents, width):
    rng = np.random.default_rng(seed)
    # load factor <= width // 2 per parent keeps probe chains honest but
    # bounded (matching how the level sizes its tables: 2x the peak)
    per_parent = rng.integers(0, width // 2 + 1, parents)
    base, coord = [], []
    for p in range(parents):
        # draw from a window 4x the width so collisions and wraparound
        # both occur; duplicates are allowed (idempotent re-insert)
        cs = rng.integers(0, width * 4, per_parent[p])
        coord.extend(int(c) for c in cs)
        base.extend([p * width] * len(cs))
    coord = np.asarray(coord, dtype=np.int64)
    base = np.asarray(base, dtype=np.int64)
    home = coord % width

    table_seq = np.full(parents * width, -1, dtype=np.int64)
    table_bulk = np.full(parents * width, -1, dtype=np.int64)
    want = _sequential_insert(table_seq, base, home, coord, width)
    got = hashed_bulk_insert(table_bulk, base, home, coord, width)
    np.testing.assert_array_equal(table_bulk, table_seq)
    np.testing.assert_array_equal(got, want)


def test_bulk_insert_empty_stream():
    table = np.full(8, -1, dtype=np.int64)
    out = hashed_bulk_insert(table, 0, np.empty(0, np.int64),
                             np.empty(0, np.int64), 8)
    assert out.shape == (0,)
    assert (table == -1).all()


@pytest.mark.parametrize("src", [COO, CSR, CSC, DIA, ELL],
                         ids=lambda f: f.name)
@pytest.mark.parametrize("style", ["sparse", "dense", "empty"])
def test_to_hash_scalar_vs_vector_bit_identical(src, style):
    rng = np.random.default_rng(hash((src.name, style)) % (2**32))
    dims = (9, 7)
    if style == "empty":
        cells = []
    else:
        every = 1 if style == "dense" else 3
        cells = [(i, j) for i in range(dims[0]) for j in range(dims[1])][
            ::every
        ]
    vals = list(rng.uniform(0.5, 1.5, len(cells)))
    tensor = reference_build(src, dims, cells, vals)

    assert resolve_backend(src, HASH) == "vector"
    scalar = make_converter(src, HASH, backend="scalar")(tensor)
    vector = make_converter(src, HASH, backend="vector")(tensor)
    scalar.check()
    vector.check()
    assert_tensors_bit_identical(scalar, vector)
    assert vector.to_coo(skip_zeros=True) == dict(zip(cells, vals))


def test_hashed_pairs_stay_off_the_chunked_executor():
    assert not chunkable(COO, HASH)
    assert not chunkable(HASH, COO)
    assert chunkable(COO, CSR)  # sanity: the executor is not disabled


def test_hashed_source_still_falls_back_to_scalar():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert resolve_backend(HASH, CSR, backend="vector") == "scalar"
