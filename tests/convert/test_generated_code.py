"""Structural tests on generated code: the optimizations the paper
attributes its performance to must be visible in the emitted source."""

import re


from repro.convert import PlanOptions, generated_source, make_converter
from repro.formats.library import BCSR, COO, CSC, CSR, DIA, ELL
from repro.storage.build import reference_build


def test_coo_to_csr_matches_figure_6c_structure():
    source = generated_source(COO, CSR)
    # histogram analysis, sequenced edge insertion, yield_pos bump,
    # shift-back finalize — and exactly two passes over the nonzeros.
    assert source.count("A1_crd[") >= 2
    assert "B2_pos[0] = 0" in source
    assert re.search(r"B2_pos\[\w+\] \+= 1", source)
    assert "np.argsort" not in source and "sorted" not in source


def test_csr_to_ell_analysis_reads_pos_not_nonzeros():
    source = generated_source(CSR, ELL)
    analysis = source.split("# analysis")[1].split("# assembly")[0]
    # Figure 6b lines 1-5: the analysis phase must not touch crd/vals
    assert "A2_crd" not in analysis
    assert "A_vals" not in analysis
    assert "A2_pos[i + 1] - A2_pos[i]" in analysis


def test_csr_to_ell_uses_scalar_counter():
    source = generated_source(CSR, ELL)
    # rows are iterated in order, so the counter is a scalar register
    # (Figure 6b's `count`), not an N-sized array (Section 4.2).
    assert "count = 0" in source
    assert "count += 1" in source
    assert "counter" not in source


def test_coo_to_ell_uses_counter_array():
    source = generated_source(COO, ELL)
    assert "counter = np.zeros(N1" in source
    assert re.search(r"counter\[\w+\] \+= 1", source)


def test_csr_to_dia_matches_figure_6a_structure():
    source = generated_source(CSR, DIA)
    # nz bit set over 2N-1 (here N2+N1-1) diagonals, perm scan, rperm
    assert "N2 + N1 - 1" in source
    assert "B1_perm" in source and "B1_rperm" in source
    # offset computed inline in both analysis and insertion (fused remap)
    assert source.count("+ N1 - 1") >= 3


def test_csc_to_dia_has_no_csr_temporary():
    """The headline result: direct CSC->DIA conversion, one analysis pass
    plus one insertion pass, no intermediate CSR tensor."""
    source = generated_source(CSC, DIA)
    assert "csr" not in source.lower()
    # only DIA outputs are allocated (perm/rperm/vals + query bit set)
    assert "B2_pos" not in source and "B2_crd" not in source


def test_dia_source_skips_explicit_zeros():
    source = generated_source(DIA, CSR)
    assert "!= 0" in source  # padding guard


def test_csr_source_has_no_zero_guard():
    source = generated_source(COO, CSR)
    assert "!= 0" not in source


def test_bcsr_target_emits_dedup_table():
    source = generated_source(CSR, BCSR(2, 2))
    assert "fill(" in source and "-1" in source
    assert re.search(r"if pB2 < 0", source)


def test_unsequenced_option_uses_prefix_sum():
    seq = generated_source(COO, CSR)
    assert "prefix_sum" not in seq
    unseq = make_converter(COO, CSR, PlanOptions(force_unsequenced_edges=True))
    assert "prefix_sum(B2_pos" in unseq.source


def test_unsequenced_variant_is_correct():
    cells = [(2, 1), (0, 3), (2, 0), (1, 1)]
    vals = [1.0, 2.0, 3.0, 4.0]
    tensor = reference_build(COO, (3, 4), cells, vals)
    converter = make_converter(COO, CSR, PlanOptions(force_unsequenced_edges=True))
    out = converter(tensor)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_generated_source_is_cached():
    a = make_converter(COO, CSR)
    b = make_converter(COO, CSR)
    assert a is b


def test_source_attached_to_function():
    converter = make_converter(COO, CSR)
    assert converter.func.__source__ == converter.source


def test_identity_conversion_works():
    cells = [(0, 1), (2, 0)]
    tensor = reference_build(CSR, (3, 3), cells, [1.0, 2.0])
    out = make_converter(CSR, CSR)(tensor)
    assert out.to_coo() == dict(zip(cells, [1.0, 2.0]))
