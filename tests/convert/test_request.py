"""ConversionRequest: one validated object behind convert()'s knobs."""

import pytest

import repro
from repro.convert import ConversionEngine, ConversionRequest, PlanError
from repro.convert.features import default_features
from repro.convert.request import PARALLEL_MODES, ROUTE_MODES
from repro.convert.router import DEFAULT_ROUTE_NNZ, find_route
from repro.formats import COO, CSR


def _build(**kwargs):
    return ConversionRequest.build(COO, CSR, **kwargs)


def test_defaults_normalize():
    request = _build()
    assert request.src is COO and request.dst is CSR
    assert request.backend == "auto"
    assert request.route == "auto" and not request.route_explicit
    assert request.parallel == "auto"
    assert request.nnz == DEFAULT_ROUTE_NNZ


def test_specs_resolve_through_the_registry():
    request = ConversionRequest.build("coo", "CSR")
    assert request.src is COO and request.dst is CSR


# ----------------------------------------------------------------------
# the backend/route conflict


def test_explicit_backend_with_explicit_route_auto_conflicts():
    with pytest.raises(ValueError, match="conflicts with route='auto'"):
        _build(backend="scalar", route="auto")
    # the message tells the caller both ways out
    with pytest.raises(ValueError, match="route='direct'"):
        _build(backend="vector", route="auto")


def test_conflict_requires_both_knobs_to_be_explicit():
    # backend pinned, route unspecified: the auto policy quietly defers
    request = _build(backend="scalar")
    assert request.backend == "scalar" and not request.route_explicit
    # route="auto" spelled out, backend unspecified: fine
    assert _build(route="auto").route_explicit
    # backend="auto" spelled out is not a pin
    assert _build(backend="auto", route="auto").backend == "auto"
    # route="direct" keeps a pinned backend without contradiction
    assert _build(backend="scalar", route="direct").route == "direct"


def test_engine_and_module_shims_raise_the_same_conflict():
    coo = repro.build(COO, (4, 4), [(0, 1), (2, 3)], [1.0, 2.0])
    engine = ConversionEngine()
    with pytest.raises(ValueError, match="conflicts with route='auto'"):
        engine.convert(coo, CSR, backend="scalar", route="auto")
    with pytest.raises(ValueError, match="conflicts with route='auto'"):
        repro.convert(coo, CSR, backend="vector", route="auto")
    with pytest.raises(ValueError, match="conflicts with route='auto'"):
        engine.plan(COO, CSR, backend="scalar", route="auto")


# ----------------------------------------------------------------------
# per-knob validation and error types


def test_unknown_backend_raises_planerror():
    with pytest.raises(PlanError, match="unknown backend"):
        _build(backend="turbo")


def test_unknown_route_mode_raises_valueerror():
    with pytest.raises(ValueError, match="unknown route mode"):
        _build(route="scenic")
    assert ROUTE_MODES == ("auto", "direct")


def test_explicit_route_object_passes_through():
    route = find_route(COO, CSR)
    request = _build(route=route)
    assert request.route is route and request.route_explicit


def test_parallel_normalization():
    assert _build(parallel=None).parallel == 0
    assert _build(parallel="off").parallel == 0
    assert _build(parallel="auto").parallel == "auto"
    assert _build(parallel=3).parallel == 3
    assert PARALLEL_MODES == ("auto", "off")


def test_parallel_rejects_bad_values():
    with pytest.raises(ValueError, match=">= 1"):
        _build(parallel=0)
    with pytest.raises(ValueError, match="worker count"):
        _build(parallel=True)  # bools are not worker counts
    with pytest.raises(ValueError, match="unknown parallel mode"):
        _build(parallel="fast")


# ----------------------------------------------------------------------
# nnz and features


def test_nnz_falls_back_to_features_then_default():
    assert _build(features=default_features(777)).nnz == 777
    assert _build(nnz=42, features=default_features(777)).nnz == 42
    assert _build().nnz == DEFAULT_ROUTE_NNZ
    with pytest.raises(ValueError, match="nnz must be an integer"):
        _build(nnz="lots")


def test_engine_defaults_apply_when_knobs_are_none():
    request = _build(default_backend="vector")
    assert request.backend == "vector"
    explicit = _build(backend="scalar", default_backend="vector")
    assert explicit.backend == "scalar"
