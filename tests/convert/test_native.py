"""Native (compiled C) backend: bit-identity, toolchain handling and the
persistent ``.so`` cache.

The native backend emits a C translation unit from the same per-level
conversion plan the scalar printer walks, builds it with the host
compiler and binds it through ctypes.  Its contract mirrors the vector
backend's: **bit-identical** output arrays to the direct scalar
conversion for every pair it lowers — plus the operational guarantees
this file pins: graceful warn-once fallback when the host has no
compiler, recompile-not-crash on a corrupt cached ``.so``, a cache miss
(not a stale-ABI load) on a compiler-fingerprint mismatch, and zero
compiler invocations on a warm cache directory.
"""

import json
import os
import random
import warnings

import numpy as np
import pytest

from repro.convert import convert
from repro.convert.engine import ConversionEngine
from repro.convert.native import native_capable, plan_native
from repro.convert.plan import ConversionPlan
from repro.convert.planner import PlanOptions
from repro.convert.context import PlanError
from repro.convert.router import CostModel
from repro.formats.library import (
    BCSR,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
)
from repro.ir.native import _clear_toolchain_cache, detect_toolchain
from repro.matrices.suite import get_matrix
from repro.storage.build import reference_build

from ..support.tensorgen import random_problem as _random_problem
from .test_backends import VECTOR_FORMATS, assert_tensors_bit_identical

EXTENDED = [BCSR(2, 2), DCSR, HICOO(2), HASH]

HAVE_CC = detect_toolchain() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C toolchain")


@pytest.fixture(scope="module")
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


@pytest.fixture
def no_compiler(monkeypatch):
    """A host with no working C compiler, restored afterwards."""
    monkeypatch.setenv("CC", "/bin/false")
    _clear_toolchain_cache()
    yield
    monkeypatch.delenv("CC", raising=False)
    _clear_toolchain_cache()


# ----------------------------------------------------------------------
# bit-identity


@needs_cc
@pytest.mark.parametrize("src", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
def test_native_bit_identical_all_pairs(src, dst, engine):
    assert native_capable(src, dst)
    native = engine.make_converter(src, dst, backend="native")
    assert native.backend == "native"
    for seed, (m, n) in enumerate([(7, 11), (1, 9), (8, 8)]):
        for style in ("empty", "dense", "sparse"):
            cells, vals = _random_problem(seed, m, n, style)
            tensor = reference_build(src, (m, n), cells, vals)
            scalar = convert(tensor, dst, backend="scalar")
            out = native(tensor)
            assert out.to_coo() == dict(zip(cells, vals))
            assert_tensors_bit_identical(scalar, out)


@needs_cc
@pytest.mark.parametrize(
    "pair",
    [(COO3, CSF), (CSF, COO3), (CSF, CSF)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_native_bit_identical_third_order(pair, engine):
    src, dst = pair
    rng = random.Random(11)
    cells = rng.sample(
        [(i, j, k) for i in range(4) for j in range(5) for k in range(6)], 37
    )
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    tensor = reference_build(src, (4, 5, 6), cells, vals)
    scalar = convert(tensor, dst, backend="scalar")
    out = engine.make_converter(src, dst, backend="native")(tensor)
    assert_tensors_bit_identical(scalar, out)


@needs_cc
@pytest.mark.parametrize(
    "pair",
    [(COO, CSR), (CSR, CSC), (COO, DIA)],
    ids=lambda p: f"{p[0].name}_{p[1].name}",
)
def test_native_bit_identical_on_suite_matrix(pair, engine):
    """Suite-size inputs cross the OpenMP trip threshold, so the
    parallel twins of the emitted loops run and must stay bit-identical
    at every team size (1 worker runs the serial twins)."""
    src, dst = pair
    entry = get_matrix("chem_master1", scale=2.0)
    tensor = entry.tensor(src)
    scalar = convert(tensor, dst, backend="scalar")
    native = engine.make_converter(src, dst, backend="native")
    for workers in (0, 1, 4):
        assert_tensors_bit_identical(scalar, native(tensor, workers))


# ----------------------------------------------------------------------
# toolchain failure paths


def test_missing_compiler_falls_back_to_vector_with_one_warning(no_compiler):
    eng = ConversionEngine()
    try:
        assert eng.toolchain() is None
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            conv = eng.make_converter(COO, CSR, backend="native")
        assert conv.backend == "vector"
        native_warnings = [
            w for w in caught if "no working C compiler" in str(w.message)
        ]
        assert len(native_warnings) == 1
        # warn-once: the second degraded request is silent
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            conv2 = eng.make_converter(CSR, CSC, backend="native")
        assert conv2.backend == "vector"
        assert not [
            w for w in caught if "no working C compiler" in str(w.message)
        ]
        # the fallback converts correctly
        tensor = reference_build(COO, (4, 5), [(1, 2), (3, 0)], [2.5, 1.5])
        ref = convert(tensor, CSR, backend="scalar")
        assert_tensors_bit_identical(ref, conv(tensor))
    finally:
        eng.shutdown()


def test_missing_compiler_plan_degrades_and_convert_runs(no_compiler):
    eng = ConversionEngine()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            plan = eng.plan(COO, CSR, backend="native")
        assert "native" not in plan.backend_per_hop
        tensor = reference_build(COO, (4, 5), [(1, 2), (3, 0)], [2.5, 1.5])
        ref = convert(tensor, CSR, backend="scalar")
        assert_tensors_bit_identical(ref, plan.run(tensor))
    finally:
        eng.shutdown()


@needs_cc
def test_pinned_native_plan_replays_loudly_without_toolchain(monkeypatch):
    eng = ConversionEngine()
    text = eng.plan(COO, CSR, backend="native").to_json()
    eng.shutdown()

    monkeypatch.setenv("CC", "/bin/false")
    _clear_toolchain_cache()
    try:
        bare = ConversionEngine()
        replay = ConversionPlan.from_json(text, engine=bare)
        assert replay.backend_per_hop == ("native",)
        tensor = reference_build(COO, (4, 5), [(1, 2), (3, 0)], [2.5, 1.5])
        with pytest.raises(PlanError, match="no working C compiler"):
            replay.run(tensor)
        bare.shutdown()
    finally:
        monkeypatch.delenv("CC", raising=False)
        _clear_toolchain_cache()


def test_codegen_is_pure_and_needs_no_toolchain(no_compiler, capsys):
    from repro.__main__ import main

    main(["codegen", "COO", "CSR", "--backend", "native"])
    out = capsys.readouterr().out
    assert "#include <stdint.h>" in out
    assert "int64_t n_workers" in out


# ----------------------------------------------------------------------
# the persistent .so cache


def _native_cache_files(cache_dir):
    names = sorted(os.listdir(cache_dir))
    return (
        [n for n in names if n.endswith(".json")],
        [n for n in names if n.endswith(".so")],
    )


@needs_cc
def test_warm_cache_invokes_no_compiler(tmp_path):
    cache = str(tmp_path)
    tensor = reference_build(COO, (6, 6), [(0, 1), (2, 3), (5, 5)], [1, 2, 3])
    ref = convert(tensor, CSR, backend="scalar")

    cold = ConversionEngine(cache_dir=cache)
    out = cold.make_converter(COO, CSR, backend="native")(tensor)
    assert_tensors_bit_identical(ref, out)
    stats = cold.cache_stats()
    assert stats["native_compiles"] == 1 and stats["native_disk_hits"] == 0
    records, shared = _native_cache_files(cache)
    assert len(records) == 1 and len(shared) == 1
    cold.shutdown()

    warm = ConversionEngine(cache_dir=cache)
    out = warm.make_converter(COO, CSR, backend="native")(tensor)
    assert_tensors_bit_identical(ref, out)
    stats = warm.cache_stats()
    assert stats["native_compiles"] == 0
    assert stats["native_disk_hits"] == 1
    warm.shutdown()


@needs_cc
def test_corrupt_cached_so_recompiles_instead_of_crashing(tmp_path):
    cache = str(tmp_path)
    tensor = reference_build(COO, (6, 6), [(0, 1), (2, 3)], [1.0, 2.0])
    ref = convert(tensor, CSR, backend="scalar")

    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR, backend="native")
    cold.shutdown()
    _, shared = _native_cache_files(cache)
    so_path = os.path.join(cache, shared[0])
    with open(so_path, "wb") as handle:
        handle.write(b"\x7fELF not really")

    eng = ConversionEngine(cache_dir=cache)
    out = eng.make_converter(COO, CSR, backend="native")(tensor)
    assert_tensors_bit_identical(ref, out)
    stats = eng.cache_stats()
    assert stats["native_compiles"] == 1 and stats["native_disk_hits"] == 0
    eng.shutdown()


@needs_cc
def test_compiler_fingerprint_mismatch_is_a_cache_miss(tmp_path):
    cache = str(tmp_path)
    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR, backend="native")
    cold.shutdown()
    records, _ = _native_cache_files(cache)
    record_path = os.path.join(cache, records[0])
    with open(record_path) as handle:
        record = json.load(handle)
    record["compiler"] = "0" * 16  # a different toolchain built this .so
    with open(record_path, "w") as handle:
        json.dump(record, handle)

    eng = ConversionEngine(cache_dir=cache)
    eng.make_converter(COO, CSR, backend="native")
    stats = eng.cache_stats()
    assert stats["native_compiles"] == 1, "stale-ABI record must not load"
    assert stats["native_disk_hits"] == 0
    eng.shutdown()


# ----------------------------------------------------------------------
# cost model & routing


def test_cost_model_native_seed_roundtrips(tmp_path):
    model = CostModel(native_per_nnz=3.3e-8)
    path = tmp_path / "model.json"
    model.save(path)
    loaded = CostModel.load(path)
    assert loaded.native_per_nnz == 3.3e-8
    assert loaded.cost_detail("native", 10_000)[1] == "seeded"


def test_cost_model_seeds_native_from_bench_report():
    report = {
        "coo_csr": {
            "cells": [
                {"nnz": 1_000_000, "native_seconds": 0.004,
                 "scalar_seconds": 1.5, "vector_seconds": 0.04},
            ]
        }
    }
    model = CostModel.from_bench_report(report)
    assert model.native_per_nnz == pytest.approx(4e-9)


@needs_cc
def test_auto_routing_gates_native_on_measured_observations(engine):
    nnz = 2_000_000
    fresh = ConversionEngine()
    try:
        names = [c.name for c in fresh.converters(COO, CSR, nnz=nnz)]
        assert "generated-native" not in names, (
            "auto must not offer the compiler before native is measured"
        )
        for _ in range(fresh.cost_model.min_observations):
            fresh.cost_model.observe("native", nnz, seconds=0.004)
        candidates = {
            c.name: c for c in fresh.converters(COO, CSR, nnz=nnz)
        }
        native = candidates["generated-native"]
        assert native.kind == "native"
        assert native.provenance == "measured"
    finally:
        fresh.shutdown()


def test_no_toolchain_hosts_never_offer_native(no_compiler):
    eng = ConversionEngine()
    try:
        for _ in range(eng.cost_model.min_observations):
            eng.cost_model.observe("native", 2_000_000, seconds=0.004)
        names = [c.name for c in eng.converters(COO, CSR, nnz=2_000_000)]
        assert "generated-native" not in names
    finally:
        eng.shutdown()


# ----------------------------------------------------------------------
# satellite: measured non-winning chunked falls back to serial


def test_measured_slow_chunked_auto_prefers_serial():
    nnz = 2_000_000
    eng = ConversionEngine(workers=4)
    try:
        for _ in range(eng.cost_model.min_observations):
            # measured: the chunked executor does NOT beat the serial
            # vector kernel for this kind (the 0.997x CSR->CSC cell)
            eng.cost_model.observe("chunked", nnz, workers=4, seconds=0.08)
            eng.cost_model.observe("vector", nnz, workers=1, seconds=0.06)
        plan = eng.plan(CSR, CSC, nnz=nnz, parallel="auto")
        assert plan.workers == 0
        assert "chunked" not in plan.backend_per_hop
        # an explicit worker count still pins the chunked executor
        pinned = eng.plan(CSR, CSC, nnz=nnz, parallel=4)
        assert pinned.workers == 4
        assert pinned.backend_per_hop == ("chunked",)
    finally:
        eng.shutdown()


def test_measured_fast_chunked_auto_still_engages():
    nnz = 2_000_000
    eng = ConversionEngine(workers=4)
    try:
        for _ in range(eng.cost_model.min_observations):
            eng.cost_model.observe("chunked", nnz, workers=4, seconds=0.02)
            eng.cost_model.observe("vector", nnz, workers=1, seconds=0.06)
        plan = eng.plan(CSR, CSC, nnz=nnz, parallel="auto")
        assert plan.workers == 4
        assert plan.backend_per_hop == ("chunked",)
    finally:
        eng.shutdown()


def test_seeded_chunked_auto_still_engages():
    """Without measurements the seeds still say chunked wins at bulk
    sizes — the fallback only fires on *measured* non-wins."""
    eng = ConversionEngine(workers=4)
    try:
        plan = eng.plan(CSR, CSC, nnz=2_000_000, parallel="auto")
        assert plan.workers == 4
        assert plan.backend_per_hop == ("chunked",)
    finally:
        eng.shutdown()


# ----------------------------------------------------------------------
# emission details


def test_emitted_c_declares_the_fixed_abi():
    source = plan_native(COO, CSR).source
    assert "REPRO_EXPORT int64_t" in source
    assert "int64_t n_workers" in source
    assert "void **in_arrays" in source
    assert "int64_t *out_lens" in source
    assert "repro_native_free" in source


def test_parallel_pairs_emit_openmp_guarded_twins():
    source = plan_native(COO, CSR).source
    assert "#ifdef _OPENMP" in source
    assert "#pragma omp parallel for" in source
    # the serial twin must exist for single-threaded hosts/builds
    assert "repro_par" in source


def test_plan_options_reach_the_emitted_c():
    default = plan_native(CSR, CSC).source
    unsequenced = plan_native(
        CSR, CSC, PlanOptions(force_unsequenced_edges=True)
    ).source
    # the ablation toggle changes the emitted C, so options must be part
    # of the native plan cache key
    assert default != unsequenced
