"""Adaptive cost model: measured hop timings, provenance, persistence,
route re-planning, and robustness against malformed BENCH reports."""

import json
import random
import warnings

import pytest

from repro.convert import ConversionEngine, CostModel, find_route, scipy_available
from repro.convert.router import MEASURED, SEEDED
from repro.formats import COO, CSR, HASH
from repro.storage.build import reference_build

# With scipy importable, the scipy-delegated converter wins the COO->CSR
# edge for sorted bulk streams and timings record under its own key; the
# no-scipy leg exercises the generated vector kernel instead.
COO_CSR_KEY = "external:scipy-coo-csr" if scipy_available() else "vector"


@pytest.fixture
def only_generated_coo_csr():
    """Temporarily unregister COO->CSR competitors so the generated
    kernels win deterministically (scipy-present and -absent legs)."""
    from repro.convert import (
        converters_for,
        register_converter,
        unregister_converter,
    )

    removed = list(converters_for(COO, CSR))
    for conv in removed:
        unregister_converter(COO, CSR, conv.name)
    yield
    for conv in removed:
        register_converter(
            conv.src, conv.dst, conv.func,
            filter=conv.filter, weight=conv.weight, name=conv.name,
        )


def _tensor(src, count=60, dims=(12, 12), seed=3):
    rng = random.Random(seed)
    cells = sorted({
        (rng.randrange(dims[0]), rng.randrange(dims[1])) for _ in range(count)
    })
    return reference_build(
        src, dims, cells, [1.0 + i for i in range(len(cells))]
    )


# ----------------------------------------------------------------------
# observe / cost_detail


def test_seeded_until_enough_observations():
    model = CostModel(min_nnz=1)
    assert model.cost_detail("vector", 100_000)[1] == SEEDED
    model.observe("vector", 100_000, 1, 0.5)
    model.observe("vector", 100_000, 1, 0.5)
    assert model.cost_detail("vector", 100_000)[1] == SEEDED  # K=3 not met
    model.observe("vector", 100_000, 1, 0.5)
    cost, provenance = model.cost_detail("vector", 100_000)
    assert provenance == MEASURED
    # ~0.5 s at 100k nnz (minus the fixed hop overhead)
    assert cost == pytest.approx(0.5, rel=0.05)


def test_measured_rates_are_ewma_smoothed():
    model = CostModel(min_nnz=1, min_observations=1)
    model.observe("scalar", 1_000_000, 1, 1.0)
    first = model.cost("scalar", 1_000_000)
    model.observe("scalar", 1_000_000, 1, 100.0)  # one outlier
    second = model.cost("scalar", 1_000_000)
    assert first < second < 30.0  # pulled up, but nowhere near 100 s


def test_tiny_observations_are_ignored():
    model = CostModel()  # default min_nnz gate
    for _ in range(10):
        model.observe("vector", 50, 1, 5.0)  # 100 ms/nnz nonsense rate
    assert model.cost_detail("vector", 100_000)[1] == SEEDED
    assert model.observation_count("vector") == 0


def test_chunked_observations_record_under_chunked():
    model = CostModel(min_nnz=1, min_observations=1)
    model.observe("vector", 100_000, 4, 0.2)  # vector hop run chunk-parallel
    assert model.observation_count("chunked") == 1
    assert model.observation_count("vector") == 0
    assert model.cost_detail("vector", 100_000, workers=4)[1] == MEASURED
    assert model.cost_detail("vector", 100_000, workers=1)[1] == SEEDED


def test_version_bumps_on_meaningful_change_only():
    model = CostModel(min_nnz=1)
    v0 = model.version
    model.observe("vector", 100_000, 1, 0.5)
    assert model.version == v0  # below K: nothing published
    model.observe("vector", 100_000, 1, 0.5)
    model.observe("vector", 100_000, 1, 0.5)
    assert model.version == v0 + 1  # first publication
    model.observe("vector", 100_000, 1, 0.5)  # same rate: no drift
    assert model.version == v0 + 1
    for _ in range(20):
        model.observe("vector", 100_000, 1, 5.0)  # 10x drift
    assert model.version > v0 + 1


# ----------------------------------------------------------------------
# routing uses measured costs


def test_injected_slow_bridge_flips_the_route():
    """The acceptance scenario: measured timings showing the bridge hop is
    slow must flip HASH->CSR from the bridge route to direct."""
    model = CostModel(min_nnz=1)
    assert not find_route(HASH, CSR, cost_model=model).is_direct
    for _ in range(model.min_observations):
        model.observe("bridge", 100_000, 1, 60.0)  # pathological bridge
    flipped = find_route(HASH, CSR, cost_model=model)
    assert flipped.is_direct
    assert flipped.hops[0].kind == "scalar"


def test_engine_route_explains_measured_after_enough_conversions(
    only_generated_coo_csr,
):
    """After >= K recorded conversions of a pair at bulk sizes, the
    engine's route explanation labels that pair's hop costs as measured
    (this exercises the default ``min_nnz`` gate end to end)."""
    model = CostModel()
    engine = ConversionEngine(cost_model=model)
    tensor = _tensor(COO, count=3 * model.min_nnz, dims=(256, 256), seed=1)
    assert tensor.nnz_stored >= model.min_nnz
    for _ in range(model.min_observations):
        engine.convert(tensor, CSR)
    assert model.observation_count("vector") >= model.min_observations
    text = engine.route(COO, CSR, nnz=tensor.nnz_stored).explain()
    assert "measured cost" in text


def test_engine_route_cache_invalidated_by_new_measurements():
    model = CostModel(min_nnz=1)
    engine = ConversionEngine(cost_model=model)
    before = engine.route(HASH, CSR)
    assert not before.is_direct  # seeded: bridge route wins
    for _ in range(model.min_observations):
        model.observe("bridge", 100_000, 1, 60.0)
    after = engine.route(HASH, CSR)
    assert after.is_direct  # cached route was dropped and re-planned


def test_convert_via_records_hop_timings():
    # zero both overheads so even microsecond hops register (observations
    # faster than the fixed per-kind overhead are otherwise discarded)
    model = CostModel(min_nnz=1, hop_overhead=0.0, external_overhead=0.0)
    engine = ConversionEngine(cost_model=model)
    tensor = _tensor(HASH)
    route = engine.route(HASH, CSR)
    engine.convert_via(route, tensor)
    assert model.observation_count("bridge") == 1
    assert model.observation_count(COO_CSR_KEY) == 1


# ----------------------------------------------------------------------
# persistence


def test_cost_model_save_load_roundtrip(tmp_path):
    model = CostModel(min_nnz=1)
    for _ in range(4):
        model.observe("vector", 100_000, 1, 0.75)
    path = tmp_path / "costs.json"
    model.save(path)
    loaded = CostModel.load(path)
    assert loaded.min_nnz == 1
    assert loaded.observation_count("vector") == 4
    assert loaded.cost_detail("vector", 100_000)[1] == MEASURED
    assert loaded.cost("vector", 100_000) == pytest.approx(
        model.cost("vector", 100_000)
    )


def test_engine_save_cost_model_and_path_constructor(tmp_path):
    # hop_overhead=0: tiny test conversions must register deterministically
    model = CostModel(min_nnz=1, hop_overhead=0.0)
    engine = ConversionEngine(cost_model=model)
    tensor = _tensor(COO)
    for _ in range(3):
        engine.convert(tensor, CSR)
    path = tmp_path / "costs.json"
    engine.save_cost_model(path)
    warm = ConversionEngine(cost_model=str(path))
    assert warm.cost_model.observation_count("vector") >= 3


def test_load_accepts_bench_report(tmp_path):
    report = {
        "coo_csr": {
            "cells": [
                {"nnz": 1000, "scalar_seconds": 1e-3, "vector_seconds": 5e-5},
            ]
        }
    }
    path = tmp_path / "BENCH_x.json"
    path.write_text(json.dumps(report))
    model = CostModel.load(path)
    assert model.scalar_per_nnz == pytest.approx(1e-6)
    assert model.vector_per_nnz == pytest.approx(5e-8)


def test_load_missing_or_unparsable_file_degrades_with_warning(tmp_path):
    with pytest.warns(RuntimeWarning, match="could not read cost model"):
        model = CostModel.load(tmp_path / "nope.json")
    assert model.scalar_per_nnz == CostModel().scalar_per_nnz
    bad = tmp_path / "bad.json"
    bad.write_text("{ not json")
    with pytest.warns(RuntimeWarning):
        assert CostModel.load(bad).vector_per_nnz == CostModel().vector_per_nnz


def test_load_malformed_saved_model_degrades_with_warning(tmp_path):
    path = tmp_path / "weird.json"
    path.write_text(json.dumps({
        "kind": "repro-cost-model",
        "schema": 1,
        "seeded": {"scalar_per_nnz": "not a number"},
    }))
    with pytest.warns(RuntimeWarning, match="malformed cost-model"):
        model = CostModel.load(path)
    assert model.scalar_per_nnz == CostModel().scalar_per_nnz


# ----------------------------------------------------------------------
# from_bench_report robustness (a bad report must degrade, not raise)


def test_from_bench_report_empty_and_missing_columns_keep_defaults():
    defaults = CostModel()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # well-formed: no warning at all
        assert CostModel.from_bench_report({}).scalar_per_nnz == defaults.scalar_per_nnz
        sparse = CostModel.from_bench_report(
            {"coo_csr": {"cells": [{"nnz": 100}]}}  # no timing columns
        )
    assert sparse.vector_per_nnz == defaults.vector_per_nnz


@pytest.mark.parametrize(
    "report",
    [
        "not a dict at all",
        {"coo_csr": "not a column"},
        {"coo_csr": {"cells": "not a list"}},
        {"coo_csr": {"cells": ["not a cell"]}},
        {"coo_csr": {"cells": [{"nnz": "three", "scalar_seconds": 1e-3}]}},
        {"coo_csr": {"cells": [{"nnz": 100, "scalar_seconds": "fast"}]}},
    ],
    ids=["not-dict", "bad-column", "bad-cells", "bad-cell", "bad-nnz",
         "bad-seconds"],
)
def test_from_bench_report_malformed_degrades_with_single_warning(report):
    with pytest.warns(RuntimeWarning, match="malformed BENCH report") as caught:
        model = CostModel.from_bench_report(report)
    assert len(caught) == 1
    assert model.scalar_per_nnz == CostModel().scalar_per_nnz


def test_from_bench_report_salvages_good_cells_next_to_bad_ones():
    report = {
        "coo_csr": {
            "cells": [
                "garbage",
                {"nnz": 1000, "scalar_seconds": 2e-3},
            ]
        }
    }
    with pytest.warns(RuntimeWarning):
        model = CostModel.from_bench_report(report)
    assert model.scalar_per_nnz == pytest.approx(2e-6)


def test_sub_overhead_observations_are_discarded():
    """A hop faster than the fixed overhead carries no throughput signal;
    recording it as a zero rate would price arbitrarily large hops at the
    overhead alone."""
    model = CostModel(min_nnz=1)
    for _ in range(10):
        model.observe("bridge", 100_000, 1, model.hop_overhead / 2)
    assert model.observation_count("bridge") == 0
    assert model.cost_detail("bridge", 100_000_000)[1] == SEEDED


def test_restored_subthreshold_entries_bump_version_at_threshold(tmp_path):
    """A saved model holding fewer than K observations of a kind must
    still bump version (invalidating cached routes) when the restored
    entry crosses the threshold, even without rate drift."""
    model = CostModel(min_nnz=1)
    model.observe("vector", 100_000, 1, 0.5)
    model.observe("vector", 100_000, 1, 0.5)  # count=2 < K=3
    path = tmp_path / "costs.json"
    model.save(path)
    restored = CostModel.load(path)
    v0 = restored.version
    assert restored.cost_detail("vector", 100_000)[1] == SEEDED
    restored.observe("vector", 100_000, 1, 0.5)  # same rate, crosses K
    assert restored.cost_detail("vector", 100_000)[1] == MEASURED
    assert restored.version == v0 + 1


def test_save_creates_missing_parent_directories(tmp_path):
    """Regression: saving into a directory that doesn't exist yet must
    create it (mkdir -p semantics) instead of failing the persist."""
    model = CostModel(min_nnz=1)
    for _ in range(5):
        model.observe("vector", 100_000, 1, 0.5)
    path = tmp_path / "state" / "nested" / "costs.json"
    model.save(path)
    restored = CostModel.load(path)
    assert restored.observation_count("vector") == 5
    # a bare filename (no directory component) still saves fine
    import os

    cwd = os.getcwd()
    os.chdir(tmp_path)
    try:
        model.save("flat.json")
        assert CostModel.load("flat.json").observation_count("vector") == 5
    finally:
        os.chdir(cwd)
