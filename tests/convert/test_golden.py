"""Golden-file tests: the generated code for the paper's seven evaluated
conversions is pinned verbatim.

These protect the code generator against silent regressions: any change
to emitted loops, temporaries or pass structure shows up as a readable
diff.  If a change is *intended*, regenerate with::

    python -m pytest tests/convert/test_golden.py --force-regen  # (manually:
    rewrite the files with repro.convert.generated_source)
"""

import pathlib

import pytest

from repro.convert import generated_source
from repro.formats import COO, CSC, CSR, DIA, ELL

GOLDEN = pathlib.Path(__file__).parent / "golden"
PAIRS = {
    "coo_csr": (COO, CSR),
    "coo_dia": (COO, DIA),
    "csr_csc": (CSR, CSC),
    "csr_dia": (CSR, DIA),
    "csr_ell": (CSR, ELL),
    "csc_dia": (CSC, DIA),
    "csc_ell": (CSC, ELL),
}

#: Vector-backend pins: the per-level numpy lowering for two
#: representative pairs (a compressed target, a squeezed/offset target),
#: so lowering refactors show up as reviewable text diffs.
VECTOR_PAIRS = {
    "vector_csr_csc": (CSR, CSC),
    "vector_coo_dia": (COO, DIA),
}


@pytest.mark.parametrize("name", sorted(PAIRS))
def test_generated_code_matches_golden(name):
    src_fmt, dst_fmt = PAIRS[name]
    want = (GOLDEN / f"{name}.py.txt").read_text()
    got = generated_source(src_fmt, dst_fmt) + "\n"
    assert got == want, (
        f"generated code for {name} changed; diff against "
        f"tests/convert/golden/{name}.py.txt and regenerate if intended"
    )


@pytest.mark.parametrize("name", sorted(VECTOR_PAIRS))
def test_vector_generated_code_matches_golden(name):
    src_fmt, dst_fmt = VECTOR_PAIRS[name]
    want = (GOLDEN / f"{name}.py.txt").read_text()
    got = generated_source(src_fmt, dst_fmt, backend="vector") + "\n"
    assert got == want, (
        f"vector-generated code for {name} changed; diff against "
        f"tests/convert/golden/{name}.py.txt and regenerate if intended"
    )
