"""Golden-file tests: the generated code for the paper's seven evaluated
conversions is pinned verbatim.

These protect the code generator against silent regressions: any change
to emitted loops, temporaries or pass structure shows up as a readable
diff.  If a change is *intended*, regenerate with::

    python -m pytest tests/convert/test_golden.py --force-regen  # (manually:
    rewrite the files with repro.convert.generated_source)
"""

import pathlib

import pytest

from repro.convert import generated_source
from repro.formats import COO, CSC, CSR, DIA, ELL

GOLDEN = pathlib.Path(__file__).parent / "golden"
PAIRS = {
    "coo_csr": (COO, CSR),
    "coo_dia": (COO, DIA),
    "csr_csc": (CSR, CSC),
    "csr_dia": (CSR, DIA),
    "csr_ell": (CSR, ELL),
    "csc_dia": (CSC, DIA),
    "csc_ell": (CSC, ELL),
}


@pytest.mark.parametrize("name", sorted(PAIRS))
def test_generated_code_matches_golden(name):
    src_fmt, dst_fmt = PAIRS[name]
    want = (GOLDEN / f"{name}.py.txt").read_text()
    got = generated_source(src_fmt, dst_fmt) + "\n"
    assert got == want, (
        f"generated code for {name} changed; diff against "
        f"tests/convert/golden/{name}.py.txt and regenerate if intended"
    )
