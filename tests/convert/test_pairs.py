"""Integration tests: generated conversions between every format pair are
semantics-preserving (checked against the host-side oracle)."""

import random

import pytest

from repro.convert import PlanError, convert
from repro.formats.library import (
    BCSR,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DIA,
    ELL,
    HICOO,
    SKY,
)
from repro.storage.build import reference_build

FORMATS_2D = [COO, CSR, CSC, DIA, ELL, BCSR(2, 3), HICOO(2)]


def _random_matrix(seed, m, n, nnz):
    rng = random.Random(seed)
    cells = rng.sample([(i, j) for i in range(m) for j in range(n)], nnz)
    vals = [round(rng.uniform(1, 9), 3) for _ in cells]
    return cells, vals


@pytest.mark.parametrize("src", FORMATS_2D, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", FORMATS_2D, ids=lambda f: f.name)
def test_all_pairs_preserve_content(src, dst):
    cells, vals = _random_matrix(7, 9, 11, 30)
    tensor = reference_build(src, (9, 11), cells, vals)
    out = convert(tensor, dst)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))
    assert out.dims == (9, 11)


@pytest.mark.parametrize("src", [COO, CSR, CSC], ids=lambda f: f.name)
def test_conversion_to_skyline(src):
    cells, vals = _random_matrix(3, 8, 8, 14)
    lower = [(i, j) for i, j in cells if j <= i]
    lvals = vals[: len(lower)]
    tensor = reference_build(src, (8, 8), lower, lvals)
    out = convert(tensor, SKY)
    out.check()
    assert out.to_coo() == dict(zip(lower, lvals))


@pytest.mark.parametrize("dst", [COO, CSR, CSC, DIA, ELL], ids=lambda f: f.name)
def test_conversion_from_skyline(dst):
    cells = [(0, 0), (2, 1), (2, 2), (4, 0), (4, 4), (5, 5)]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    tensor = reference_build(SKY, (6, 6), cells, vals)
    out = convert(tensor, dst)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_third_order_csf_to_coo3():
    rng = random.Random(3)
    cells = rng.sample(
        [(i, j, k) for i in range(4) for j in range(5) for k in range(6)], 19
    )
    vals = [round(rng.uniform(1, 9), 3) for _ in cells]
    tensor = reference_build(CSF, (4, 5, 6), cells, vals)
    out = convert(tensor, COO3)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_third_order_coo3_roundtrip():
    cells = [(0, 0, 0), (1, 2, 3), (3, 4, 5)]
    vals = [1.0, 2.0, 3.0]
    tensor = reference_build(COO3, (4, 5, 6), cells, vals)
    out = convert(tensor, COO3)
    assert out.to_coo() == dict(zip(cells, vals))


def test_csf_target_uses_staged_assembly():
    """Compressed-under-compressed assembly runs as two staged passes
    (an extension beyond the paper's evaluated formats)."""
    import random

    rng = random.Random(9)
    cells = rng.sample(
        [(i, j, k) for i in range(5) for j in range(4) for k in range(6)], 25
    )
    vals = [float(n + 1) for n in range(len(cells))]
    tensor = reference_build(COO3, (5, 4, 6), cells, vals)
    out = convert(tensor, CSF)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))
    # two insertion passes, one memo array
    from repro.convert import generated_source

    source = generated_source(COO3, CSF)
    assert source.count("# assembly: coordinate insertion") == 2
    assert "memo1" in source


def test_csf_roundtrip_both_ways():
    cells = [(0, 0, 0), (0, 0, 3), (0, 2, 1), (2, 1, 1), (2, 1, 2)]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    tensor = reference_build(CSF, (3, 3, 4), cells, vals)
    coo3 = convert(tensor, COO3)
    assert coo3.to_coo() == dict(zip(cells, vals))
    back = convert(coo3, CSF)
    back.check()
    assert back.to_coo() == dict(zip(cells, vals))
    import numpy as np

    reference = reference_build(CSF, (3, 3, 4), cells, vals)
    np.testing.assert_array_equal(back.array(1, "pos"), reference.array(1, "pos"))
    np.testing.assert_array_equal(back.array(2, "pos"), reference.array(2, "pos"))


def test_empty_tensor_conversions():
    tensor = reference_build(COO, (5, 7), [], [])
    for dst in [CSR, CSC, DIA, ELL]:
        out = convert(tensor, dst)
        out.check()
        assert out.to_coo() == {}


def test_single_nonzero():
    tensor = reference_build(COO, (1, 1), [(0, 0)], [3.5])
    for dst in FORMATS_2D:
        out = convert(tensor, dst)
        assert out.to_coo() == {(0, 0): 3.5}


def test_full_dense_matrix():
    cells = [(i, j) for i in range(4) for j in range(4)]
    vals = [float(1 + i) for i in range(16)]
    tensor = reference_build(CSR, (4, 4), cells, vals)
    for dst in FORMATS_2D:
        out = convert(tensor, dst)
        assert out.to_coo() == dict(zip(cells, vals))


def test_single_row_and_column_shapes():
    for dims, cells in [((1, 6), [(0, 2), (0, 5)]), ((6, 1), [(2, 0), (5, 0)])]:
        tensor = reference_build(COO, dims, cells, [1.0, 2.0])
        for dst in [CSR, CSC, DIA, ELL]:
            out = convert(tensor, dst)
            assert out.to_coo() == dict(zip(cells, [1.0, 2.0]))


def test_unsorted_coo_input():
    """COO is not assumed sorted (Section 7.2)."""
    cells = [(3, 1), (0, 4), (2, 2), (0, 0), (3, 0), (1, 3)]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    tensor = reference_build(COO, (4, 5), cells, vals)
    for dst in [CSR, CSC, DIA, ELL]:
        out = convert(tensor, dst)
        out.check()
        assert out.to_coo() == dict(zip(cells, vals))


def test_converter_rejects_wrong_source_format():
    from repro.convert import make_converter

    tensor = reference_build(COO, (3, 3), [(0, 0)], [1.0])
    converter = make_converter(CSR, CSC)
    with pytest.raises(ValueError):
        converter(tensor)


def test_mismatched_order_rejected():
    tensor = reference_build(COO3, (3, 3, 3), [(0, 0, 0)], [1.0])
    with pytest.raises(PlanError):
        convert(tensor, CSR)
