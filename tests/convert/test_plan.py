"""First-class ConversionPlans: inspection, execution, JSON roundtrip and
the persistent kernel cache.

The core contract (the PR's acceptance bar): ``plan.to_json()`` → a fresh
engine with the same ``cache_dir`` → ``ConversionPlan.from_json(...).run(t)``
is bit-identical to a direct ``convert(t, ...)`` for every vectorizable
pair and every routed pair, and the warm engine's ``cache_stats()`` shows
``compiles == 0`` with ``disk_hits > 0``.
"""

import json
import random

import pytest

from repro.convert import (
    ConversionEngine,
    ConversionPlan,
    PlanOptions,
    convert,
    scipy_available,
)
from repro.convert.context import PlanError
from repro.convert.plan import CompiledPlan, key_to_json
from repro.convert.planner import structural_key
from repro.formats import BCSR, COO, CSC, CSR, DCSR, DIA, ELL, HASH, make_format
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel
from repro.storage.build import reference_build

from .test_backends import VECTOR_FORMATS, assert_tensors_bit_identical

EXTENDED = [BCSR(2, 2), DCSR]
HASH_TARGETS = [CSR, CSC, DIA, ELL, COO]

# With scipy importable its registered converter wins the bulk COO->CSR
# edge; the no-scipy leg keeps the generated vector kernel.
EXT = "external" if scipy_available() else "vector"


def _problem(src, seed=5, dims=(9, 11), count=40):
    rng = random.Random(seed)
    cells = sorted({
        (rng.randrange(dims[0]), rng.randrange(dims[1])) for _ in range(count)
    })
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    return reference_build(src, dims, cells, vals)


def _roundtrip(src, dst, tmp_path):
    """The acceptance roundtrip for one pair; returns the warm stats."""
    cache = str(tmp_path / "kernels")
    tensor = _problem(src)

    cold = ConversionEngine(cache_dir=cache)
    plan = cold.plan(src, dst, nnz=tensor.nnz_stored)
    out_cold = plan.run(tensor)  # compiles + writes the kernel records
    text = plan.to_json()

    warm = ConversionEngine(cache_dir=cache)
    replay = ConversionPlan.from_json(text, engine=warm)
    out_warm = replay.run(tensor)

    direct = convert(tensor, dst)
    assert_tensors_bit_identical(out_cold, direct)
    assert_tensors_bit_identical(out_warm, direct)
    return plan, warm.cache_stats()


@pytest.mark.parametrize("src", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
@pytest.mark.parametrize("dst", VECTOR_FORMATS + EXTENDED, ids=lambda f: f.name)
def test_plan_roundtrip_every_vectorizable_pair(src, dst, tmp_path):
    if src is dst:
        pytest.skip("identity pair")
    plan, stats = _roundtrip(src, dst, tmp_path)
    assert stats["compiles"] == 0
    assert stats["disk_hits"] > 0


@pytest.mark.parametrize("dst", HASH_TARGETS, ids=lambda f: f.name)
def test_plan_roundtrip_every_routed_pair(dst, tmp_path):
    plan, stats = _roundtrip(HASH, dst, tmp_path)
    assert plan.routed and "bridge" in plan.backend_per_hop
    assert stats["compiles"] == 0
    generated_hops = [hop for hop in plan.hops if hop.kind != "bridge"]
    if generated_hops:
        assert stats["disk_hits"] > 0


# ----------------------------------------------------------------------
# plan structure and inspection


def test_plan_exposes_hops_and_backends():
    engine = ConversionEngine()
    plan = engine.plan(HASH, CSR)
    assert plan.src is HASH and plan.dst is CSR
    assert [f.name for f in plan.formats] == ["HASH", "COO", "CSR"]
    assert plan.backend_per_hop == ("bridge", EXT)
    assert not plan.is_direct
    assert plan.routed
    assert str(plan) == "HASH -> COO -> CSR"


def test_plan_estimated_cost_scales_with_nnz():
    engine = ConversionEngine()
    plan = engine.plan(COO, CSR)
    assert plan.estimated_cost(10_000) < plan.estimated_cost(10_000_000)


def test_plan_sources_per_hop():
    engine = ConversionEngine()
    plan = engine.plan(HASH, CSR)
    sources = plan.sources()
    assert sources[0] is None  # bridge: no generated code
    if plan.hops[1].kind == "external":
        assert sources[1] is None  # registered converter: no generated code
    else:
        assert "def convert_COO_to_CSR" in sources[1]
    # a pinned generated backend always has a source
    direct = engine.plan(COO, CSR, backend="vector")
    assert "def convert_COO_to_CSR" in direct.sources()[0]


def test_plan_explain_mentions_every_hop_and_provenance():
    engine = ConversionEngine()
    text = engine.plan(HASH, CSR).explain()
    assert "plan HASH -> CSR" in text
    second_hop = (
        "registered converter" if EXT == "external" else "bulk-numpy"
    )
    assert "bulk extraction" in text and second_hop in text
    assert "seeded cost" in text


def test_plan_compile_returns_ready_runner():
    engine = ConversionEngine()
    runner = engine.plan(COO, CSR).compile()
    assert isinstance(runner, CompiledPlan)
    compiles = engine.cache_stats()["compiles"]
    tensor = _problem(COO)
    out = runner(tensor)
    assert out.format is CSR
    assert engine.cache_stats()["compiles"] == compiles  # nothing left to do
    assert runner.src_format is COO and runner.dst_format is CSR


def test_plan_run_rejects_wrong_source_format():
    engine = ConversionEngine()
    plan = engine.plan(COO, CSR)
    with pytest.raises(ValueError):
        plan.run(_problem(CSR))


def test_plan_counts_as_conversion_in_engine_stats():
    engine = ConversionEngine()
    engine.plan(COO, CSR).run(_problem(COO))
    stats = engine.cache_stats()
    assert stats["conversions"] == 1
    assert stats["routed_conversions"] == 0
    assert engine.pair_counts() == {("COO", "CSR"): 1}


def test_chunked_plan_roundtrips_with_workers(tmp_path):
    cache = str(tmp_path / "kernels")
    tensor = _problem(COO)
    cold = ConversionEngine(cache_dir=cache, workers=2)
    plan = cold.plan(COO, CSR, parallel=2, nnz=tensor.nnz_stored)
    assert plan.backend_per_hop == ("chunked",)
    assert plan.workers == 2
    out = plan.run(tensor)
    cold.shutdown()

    warm = ConversionEngine(cache_dir=cache, workers=2)
    replay = ConversionPlan.from_json(plan.to_json(), engine=warm)
    assert replay.workers == 2
    out_warm = replay.run(tensor)
    assert_tensors_bit_identical(out, out_warm)
    stats = warm.cache_stats()
    assert stats["compiles"] == 0 and stats["disk_hits"] > 0
    warm.shutdown()


def test_plan_options_roundtrip():
    options = PlanOptions(force_unsequenced_edges=True, parallel_threshold=17)
    engine = ConversionEngine()
    plan = engine.plan(COO, CSR, options=options, backend="scalar")
    replay = ConversionPlan.from_json(plan.to_json())
    assert replay.options == options
    assert replay.backend_per_hop == ("scalar",)


# ----------------------------------------------------------------------
# serialization schema


def test_plan_json_schema_fields():
    data = json.loads(ConversionEngine().plan(HASH, CSR).to_json())
    assert data["schema"] == 2
    assert data["kind"] == "repro-conversion-plan"
    assert [hop["kind"] for hop in data["hops"]] == ["bridge", EXT]
    if EXT == "external":
        assert data["hops"][1]["converter"] == "scipy-coo-csr"
    first = data["hops"][0]["src"]
    assert first["name"] == "HASH"
    assert first["structural_key"] == key_to_json(structural_key(HASH))


def test_plan_from_json_rejects_newer_schema():
    data = json.loads(ConversionEngine().plan(COO, CSR).to_json())
    data["schema"] = 999
    with pytest.raises(PlanError):
        ConversionPlan.from_dict(data)


def test_plan_from_json_rejects_unknown_format():
    data = json.loads(ConversionEngine().plan(COO, CSR).to_json())
    data["hops"][0]["src"]["name"] = "NO_SUCH_FORMAT"
    with pytest.raises(PlanError):
        ConversionPlan.from_dict(data)


def test_plan_from_json_rejects_diverged_structure():
    data = json.loads(ConversionEngine().plan(COO, CSR).to_json())
    # same name on this host, different recorded structure
    data["hops"][0]["src"]["structural_key"] = ["something", "else", [], []]
    with pytest.raises(PlanError):
        ConversionPlan.from_dict(data)


def test_plan_from_json_rejects_broken_chain_and_bad_kind():
    engine = ConversionEngine()
    data = json.loads(engine.plan(HASH, CSR).to_json())
    bad_kind = json.loads(json.dumps(data))
    bad_kind["hops"][0]["kind"] = "teleport"
    with pytest.raises(PlanError):
        ConversionPlan.from_dict(bad_kind)
    broken = json.loads(json.dumps(data))
    broken["hops"][1]["src"] = broken["hops"][0]["src"]  # HASH != COO
    with pytest.raises(PlanError):
        ConversionPlan.from_dict(broken)
    with pytest.raises(PlanError):
        ConversionPlan.from_json("this is not json {")
    with pytest.raises(PlanError):
        ConversionPlan.from_json("{\"not\": \"a plan\"}")


def test_plan_replays_for_renamed_structural_twin():
    """A plan made for a registered twin resolves by *name*; structural
    verification accepts it because the structure matches."""
    twin = make_format(
        "PLANTWIN_CSR",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel()],
        inverse_text="(i,j) -> (i, j)",
    )
    from repro.formats import register_format

    register_format(twin)
    engine = ConversionEngine()
    plan = engine.plan(COO, twin)
    replay = ConversionPlan.from_json(plan.to_json(), engine=engine)
    assert replay.dst.name == "PLANTWIN_CSR"
    out = replay.run(_problem(COO))
    assert out.format is twin


# ----------------------------------------------------------------------
# module-level shim


def test_module_level_plan_shim():
    from repro.convert import plan as plan_fn

    p = plan_fn("HASH", "CSR")
    assert isinstance(p, ConversionPlan)
    assert p.backend_per_hop == ("bridge", EXT)


def test_convert_is_a_plan_shim():
    """convert() builds and runs a plan: same result, same counters."""
    engine = ConversionEngine()
    tensor = _problem(COO)
    out = engine.convert(tensor, CSR)
    plan_out = engine.plan(COO, CSR, nnz=tensor.nnz_stored).run(tensor)
    assert_tensors_bit_identical(out, plan_out)
    assert engine.cache_stats()["conversions"] == 2


def test_plan_from_dict_malformed_records_raise_planerror():
    """Hand-edited or truncated plan files must fail with PlanError (the
    CLI catches it), never a raw AttributeError/ValueError."""
    engine = ConversionEngine()
    base = json.loads(engine.plan(COO, CSR).to_json())
    for mutate in (
        lambda d: d.update(hops="not a list"),
        lambda d: d.update(hops=["not a record"]),
        lambda d: d["hops"][0].update(src="not a format record"),
        lambda d: d["hops"][0].pop("src"),
        lambda d: d.update(workers="lots"),
        lambda d: d.update(nnz=[1, 2]),
        lambda d: d.update(options="not options"),
    ):
        data = json.loads(json.dumps(base))
        mutate(data)
        with pytest.raises(PlanError):
            ConversionPlan.from_dict(data)


def test_chunked_plan_degrades_gracefully_without_chunked_form():
    """A replayed plan carrying a 'chunked' hop for a pair with no
    chunked form on this host falls back to the serial vector kernel —
    consistently across sources()/compile()/run()."""
    from repro.convert.plan import _PLAN_HOP_KINDS
    from repro.convert.router import Hop

    assert "chunked" in _PLAN_HOP_KINDS
    engine = ConversionEngine()
    plan = ConversionPlan(
        hops=(Hop(COO, CSR, "chunked"),),
        options=PlanOptions(),
        workers=0,  # replaying host decided to run serial
        nnz=100,
        engine=engine,
    )
    (source,) = plan.sources()
    assert "def convert_COO_to_CSR" in source
    runner = plan.compile()
    out = runner(_problem(COO))
    assert out.format is CSR
