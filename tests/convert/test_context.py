"""Unit tests for the conversion context: registries, bounds, handles."""

import pytest

from repro.cin.nodes import KeyDim, KeySrc
from repro.convert.context import (
    ConversionContext,
    PlanError,
    QueryResultHandle,
)
from repro.formats.library import COO, CSC, CSR, DIA, ELL
from repro.ir import builder as b
from repro.ir.nodes import Const, Var
from repro.ir.printer import print_expr


def test_array_naming_and_registration_order():
    ctx = ConversionContext(COO, CSR)
    assert ctx.src_array(0, "crd") == Var("A1_crd")
    assert ctx.src_array(1, "crd") == Var("A2_crd")
    assert ctx.src_vals() == Var("A_vals")
    assert ctx.dst_array(1, "pos") == Var("B2_pos")
    assert ctx.dst_vals() == Var("B_vals")
    # repeated registration returns the same variable, once
    assert ctx.src_array(0, "crd") is ctx.src_params[("src_array", 0, "crd")]
    names = [var.name for _, var in ctx.param_list()]
    assert names == ["A1_crd", "A2_crd", "A_vals", "N1", "N2"]


def test_meta_registration():
    ctx = ConversionContext(CSR, ELL)
    assert ctx.dst_meta(0, "K") == Var("B1_K")
    assert ("dst_meta", 0, "K") in dict(ctx.output_list())


def test_canonical_names_follow_dst_remap():
    ctx = ConversionContext(CSC, CSR)
    assert ctx.canonical_names == ("i", "j")
    assert ctx.canonical_dim_size("j") == Var("N2")


def test_src_level_var_mapping():
    assert ConversionContext(CSR, CSR).src_level_var == ["i", "j"]
    assert ConversionContext(CSC, CSR).src_level_var == ["j", "i"]
    # DIA's column level is derived (k+i), not a bare variable
    assert ConversionContext(DIA, CSR).src_level_var == [None, "i", None]


def test_dst_dim_bounds_dia():
    ctx = ConversionContext(CSR, DIA)
    assert print_expr(ctx.dst_dim_lo(0)) == "-(N1 - 1)"
    assert print_expr(ctx.dst_dim_extent(0)) == "N2 + N1 - 1"
    assert print_expr(ctx.dst_dim_extent(1)) == "N1"


def test_counter_dim_extent_raises():
    ctx = ConversionContext(CSR, ELL)
    with pytest.raises(PlanError):
        ctx.dst_dim_extent(0)  # #i has no static extent
    # but its lower bound is known
    assert ctx.dst_dim_lo(0) == Const(0)


def test_key_extent_for_src_keys():
    ctx = ConversionContext(CSR, ELL)
    assert ctx.key_extent(KeySrc("i")) == Var("N1")
    assert ctx.key_lo(KeySrc("i")) == Const(0)


def test_query_registry():
    ctx = ConversionContext(CSR, CSR)
    handle = QueryResultHandle(ctx, (KeyDim(0),), Var("q"), False)
    ctx.register_query(1, "nir", handle)
    assert ctx.query(1, "nir") is handle
    with pytest.raises(PlanError):
        ctx.query(0, "missing")


def test_handle_decode_max():
    ctx = ConversionContext(CSR, ELL)
    handle = QueryResultHandle(ctx, (), Var("q"), True, decode=("max", 0))
    # Q == Q' + lo - 1 with lo == 0
    assert print_expr(handle.at(())) == "q - 1"


def test_handle_decode_min():
    from repro.formats.library import SKY

    ctx = ConversionContext(CSR, SKY)
    handle = QueryResultHandle(ctx, (), Var("q"), True, decode=("min", 1))
    # Q == hi + 1 - Q' with hi == N2 - 1
    assert print_expr(handle.at(())) == "N2 - q"


def test_handle_array_indexing_shifts_by_lo():
    ctx = ConversionContext(CSR, DIA)
    handle = QueryResultHandle(ctx, (KeyDim(0),), Var("nz"), False)
    expr = handle.at([b.sub("j", "i"), Var("i"), Var("j")])
    assert print_expr(expr) == "nz[j - i + N1 - 1]"


def test_handle_at_shifted_requires_single_key():
    ctx = ConversionContext(CSR, DIA)
    scalar = QueryResultHandle(ctx, (), Var("q"), True)
    with pytest.raises(PlanError):
        scalar.at_shifted(Const(0))


def test_mismatched_orders_rejected():
    from repro.formats.library import COO3

    with pytest.raises(PlanError):
        ConversionContext(COO3, CSR)


def test_source_without_inverse_rejected():
    from repro.formats.format import make_format
    from repro.levels import CompressedLevel, DenseLevel

    no_inverse = make_format("X", "(i,j) -> (i, j)",
                             [DenseLevel(), CompressedLevel()])
    with pytest.raises(PlanError):
        ConversionContext(no_inverse, CSR)


def test_dst_view_zero_init_tracks_padding():
    assert ConversionContext(CSR, ELL).dst.needs_zero_init(2)
    assert not ConversionContext(COO, CSR).dst.needs_zero_init(1)


def test_scratch_is_shared():
    ctx = ConversionContext(CSR, DIA)
    ctx.dst.scratch[(0, "rperm")] = Var("r")
    assert ctx.scratch[(0, "rperm")] == Var("r")
