"""Competing converters: the registration API, the scipy-delegated
builtins, predicate admission, runtime fallback, and plan pinning."""

import random

import numpy as np
import pytest

from repro.convert import (
    ConversionEngine,
    ConversionPlan,
    PlanError,
    converter_named,
    converters_for,
    default_features,
    register_converter,
    run_converter,
    sample_features,
    scipy_available,
    unregister_converter,
)
from repro.formats import COO, CSC, CSR, FormatError
from repro.storage.build import reference_build

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy is not installed"
)


def _sorted_coo(count=80, dims=(24, 24), seed=5):
    rng = random.Random(seed)
    cells = sorted({
        (rng.randrange(dims[0]), rng.randrange(dims[1])) for _ in range(count)
    })
    return reference_build(
        COO, dims, cells, [1.0 + i for i in range(len(cells))]
    )


def _unsorted_coo(count=80, dims=(24, 24), seed=5):
    rng = random.Random(seed)
    cells = sorted({
        (rng.randrange(dims[0]), rng.randrange(dims[1])) for _ in range(count)
    })
    rng.shuffle(cells)  # COO keeps the given stream order
    return reference_build(
        COO, dims, cells, [1.0 + i for i in range(len(cells))]
    )


def _assert_bit_identical(out, ref):
    """Same arrays, same dtypes, same values — not just the same to_coo."""
    assert out.format is ref.format and out.dims == ref.dims
    assert set(out.arrays) == set(ref.arrays)
    for key, arr in ref.arrays.items():
        assert out.arrays[key].dtype == arr.dtype, key
        assert np.array_equal(out.arrays[key], arr), key
    assert out.vals.dtype == ref.vals.dtype
    assert np.array_equal(out.vals, ref.vals)


@pytest.fixture
def engine():
    return ConversionEngine()


# ----------------------------------------------------------------------
# the scipy-delegated builtins


def test_builtin_registration_matches_scipy_availability():
    names = [c.name for c in converters_for(COO, CSR)]
    if scipy_available():
        assert "scipy-coo-csr" in names
    else:
        assert not any(n.startswith("scipy-") for n in names)


@needs_scipy
@pytest.mark.parametrize(
    "src,dst,name",
    [
        (COO, CSR, "scipy-coo-csr"),
        (COO, CSC, "scipy-coo-csc"),
        (CSR, CSC, "scipy-csr-csc"),
        (CSC, CSR, "scipy-csc-csr"),
    ],
)
def test_scipy_builtins_bit_identical_on_admitted_streams(
    engine, src, dst, name
):
    coo = _sorted_coo()
    tensor = coo if src is COO else engine.convert(
        coo, src, backend="scalar", route="direct"
    )
    converter = converter_named(src, dst, name)
    assert converter is not None
    assert converter.admits(sample_features(tensor))
    out = run_converter(converter, tensor, dst)
    ref = engine.convert(tensor, dst, backend="scalar", route="direct")
    _assert_bit_identical(out, ref)


@needs_scipy
def test_scipy_coo_compressors_refuse_unsorted_streams(engine):
    unsorted = _unsorted_coo()
    features = sample_features(unsorted)
    assert features.sortedness < 1.0
    for name in ("scipy-coo-csr", "scipy-coo-csc"):
        converter = converter_named(COO, CSR if "csr" in name else CSC, name)
        assert not converter.admits(features)
    # the engine still converts it — via the generated kernels — and the
    # result stays bit-identical to the direct scalar conversion
    out = engine.convert(unsorted, CSR)
    ref = engine.convert(unsorted, CSR, backend="scalar", route="direct")
    _assert_bit_identical(out, ref)


@needs_scipy
def test_csr_csc_builtins_unpredicated():
    for src, dst, name in (
        (CSR, CSC, "scipy-csr-csc"),
        (CSC, CSR, "scipy-csc-csr"),
    ):
        assert converter_named(src, dst, name).filter is None


# ----------------------------------------------------------------------
# the registration API


def test_register_validates_arguments():
    with pytest.raises(TypeError, match="must be callable"):
        register_converter(COO, CSR, "not-a-function")
    with pytest.raises(TypeError, match="filter must be callable"):
        register_converter(COO, CSR, lambda t, d: t, filter="nope")
    for bad_weight in (0, -1.0, "heavy"):
        with pytest.raises(ValueError, match="weight"):
            register_converter(COO, CSR, lambda t, d: t, weight=bad_weight)


def test_register_duplicate_name_raises():
    register_converter(COO, CSR, lambda t, d: t, name="dup-test")
    try:
        with pytest.raises(ValueError, match="already"):
            register_converter(COO, CSR, lambda t, d: t, name="dup-test")
    finally:
        assert unregister_converter(COO, CSR, "dup-test")


def test_unregister_reports_whether_it_existed():
    assert not unregister_converter(COO, CSR, "never-registered")
    register_converter(COO, CSR, lambda t, d: t, name="ephemeral")
    assert unregister_converter(COO, CSR, "ephemeral")
    assert not unregister_converter(COO, CSR, "ephemeral")
    assert converter_named(COO, CSR, "ephemeral") is None


def test_registration_invalidates_cached_routes(engine):
    # an engine that already routed a pair must pick up converters
    # registered afterwards: the registry version is part of the
    # route-cache staleness check.  The tensor is large enough that the
    # external candidate's fixed overhead does not price the direct edge
    # above a multi-hop vector detour.
    coo = _sorted_coo(count=12000, dims=(128, 128))
    before = engine.plan(COO, CSR, route="auto")
    calls = []

    def fast(tensor, dst):
        calls.append(1)
        return ConversionEngine().convert(
            tensor, dst, backend="vector", route="direct"
        )

    register_converter(COO, CSR, fast, weight=1e-9, name="late-arrival")
    try:
        plan = engine.plan(COO, CSR, route="auto")
        assert plan.hops[0].converter == "late-arrival"
        out = engine.convert(coo, CSR, route="auto")
        assert calls
        ref = engine.convert(coo, CSR, backend="scalar", route="direct")
        _assert_bit_identical(out, ref)
    finally:
        unregister_converter(COO, CSR, "late-arrival")
    after = engine.plan(COO, CSR, route="auto")
    assert [h.converter for h in after.hops] == [
        h.converter for h in before.hops
    ]


def test_run_converter_rejects_bad_results(engine):
    coo = _sorted_coo()
    bad = register_converter(
        COO, CSR, lambda t, d: "oops", name="bad-return"
    )
    wrong = register_converter(
        COO, CSR, lambda t, d: t, name="wrong-format"
    )
    try:
        with pytest.raises(FormatError, match="not a Tensor"):
            run_converter(bad, coo, CSR)
        with pytest.raises(FormatError, match="not structurally"):
            run_converter(wrong, coo, CSR)  # returns the COO input
    finally:
        unregister_converter(COO, CSR, "bad-return")
        unregister_converter(COO, CSR, "wrong-format")


# ----------------------------------------------------------------------
# admission and selection


def test_predicate_rejecting_all_falls_back_to_generated(engine):
    calls = []

    def never(tensor, dst):  # pragma: no cover - must not run
        calls.append(1)
        raise AssertionError("predicate-rejected converter ran")

    register_converter(
        COO, CSR, never, filter=lambda f: False, weight=1e-9,
        name="rejects-all",
    )
    try:
        coo = _sorted_coo()
        features = sample_features(coo)
        cands = engine.converters(COO, CSR, nnz=1_000_000, features=features)
        rejected = [c for c in cands if c.name == "rejects-all"]
        assert rejected and not rejected[0].admitted
        # rejected candidates sort after every admitted one
        assert all(c.admitted for c in cands[: cands.index(rejected[0])])
        out = engine.convert(coo, CSR)
        ref = engine.convert(coo, CSR, backend="scalar", route="direct")
        _assert_bit_identical(out, ref)
        assert not calls
    finally:
        unregister_converter(COO, CSR, "rejects-all")


def test_weight_ties_break_deterministically_on_name(engine):
    def ident(tensor, dst):
        return ConversionEngine().convert(
            tensor, dst, backend="vector", route="direct"
        )

    register_converter(COO, CSR, ident, weight=1e-6, name="zz-tied")
    register_converter(COO, CSR, ident, weight=1e-6, name="aa-tied")
    try:
        features = default_features(1_000_000)
        cands = engine.converters(
            COO, CSR, nnz=1_000_000, features=features
        )
        tied = [c for c in cands if c.name.endswith("-tied")]
        assert [c.name for c in tied] == ["aa-tied", "zz-tied"]
        assert tied[0].rank < tied[1].rank  # name is the final tiebreak
        plan = engine.plan(
            COO, CSR, nnz=1_000_000, features=features
        )
        assert plan.hops[0].kind == "external"
        assert plan.hops[0].converter == "aa-tied"
    finally:
        unregister_converter(COO, CSR, "zz-tied")
        unregister_converter(COO, CSR, "aa-tied")


def test_runtime_recheck_falls_back_when_predicate_refuses(engine):
    def sorted_only(tensor, dst):  # pragma: no cover - must not run
        raise AssertionError("ran on a stream its predicate refuses")

    register_converter(
        COO, CSR, sorted_only, filter=lambda f: f.sortedness >= 1.0,
        weight=1e-9, name="sorted-only",
    )
    try:
        # plan optimistically, without a tensor: default features admit
        plan = engine.plan(COO, CSR, nnz=1_000_000)
        assert plan.hops[0].converter == "sorted-only"
        unsorted = _unsorted_coo()
        out = plan.run(unsorted)  # recheck refuses -> generated kernel
        ref = engine.convert(unsorted, CSR, backend="scalar", route="direct")
        _assert_bit_identical(out, ref)
    finally:
        unregister_converter(COO, CSR, "sorted-only")


# ----------------------------------------------------------------------
# plan pinning (schema 2)


def test_replayed_plan_requires_the_pinned_converter(engine):
    def ident(tensor, dst):
        return ConversionEngine().convert(
            tensor, dst, backend="vector", route="direct"
        )

    register_converter(COO, CSR, ident, weight=1e-9, name="pin-me")
    try:
        plan = engine.plan(
            COO, CSR, nnz=1_000_000, features=default_features(1_000_000)
        )
        assert plan.hops[0].converter == "pin-me"
        payload = plan.to_json()
    finally:
        unregister_converter(COO, CSR, "pin-me")
    # the diverged host fails at load time, before anything runs
    with pytest.raises(PlanError, match="pin-me.*not registered"):
        ConversionPlan.from_json(payload, engine=engine)
