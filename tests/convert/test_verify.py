"""Tests for the differential verifier."""

import pytest

from repro.convert import (
    VerificationError,
    verify_all_pairs,
    verify_conversion,
)
from repro.formats.library import COO, CSR, DCSR, DIA, ELL, SKY


def test_verify_good_pairs():
    assert verify_conversion(COO, CSR, trials=10, max_dim=6) > 0
    assert verify_conversion(CSR, DIA, trials=10, max_dim=6) > 0
    assert verify_conversion(COO, DCSR, trials=10, max_dim=6) > 0


def test_verify_skyline_skips_unrepresentable_inputs():
    # most random inputs are not lower-triangular; the verifier must skip
    # them rather than fail, and still check some
    checked = verify_conversion(SKY, CSR, trials=40, max_dim=5)
    assert 0 < checked <= 40


def test_verify_all_pairs_skips_mismatched_orders():
    from repro.formats.library import COO3

    report = verify_all_pairs([CSR, COO3], trials=2, max_dim=4)
    names = {(src, dst) for src, dst, _ in report}
    assert ("CSR", "CSR") in names and ("COO3", "COO3") in names
    assert ("CSR", "COO3") not in names


def test_verify_reports_broken_routine(monkeypatch):
    """Sabotage a compiled routine and check the verifier catches it."""
    from repro.convert import make_converter

    converter = make_converter(COO, ELL)
    original = converter.func

    def broken(*args):
        out = list(original(*args))
        if len(out[-1]):
            out[-1] = out[-1].copy()
            out[-1][0] += 1.0  # corrupt one value
        return tuple(out)

    monkeypatch.setattr(converter, "func", broken)
    with pytest.raises(VerificationError):
        verify_conversion(COO, ELL, trials=20, max_dim=6)
