"""Tests for the ConversionEngine: caching, LRU bounds, thread safety,
policy, telemetry and the stable module-level shims."""

import warnings
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.convert import (
    ConversionEngine,
    PlanOptions,
    convert,
    default_engine,
    make_converter,
)
from repro.formats import BCSR, COO, CSC, CSR, DIA, ELL, make_format
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel
from repro.storage.build import reference_build


def small_coo():
    return reference_build(COO, (4, 5), [(0, 1), (2, 3), (3, 0)], [1.0, 2.0, 3.0])


# ----------------------------------------------------------------------
# basic semantics


def test_engine_convert_accepts_spec_strings():
    engine = ConversionEngine()
    out = engine.convert(small_coo(), "CSR")
    assert out.format is CSR
    assert out.to_coo() == small_coo().to_coo()


def test_engine_make_converter_accepts_spec_strings():
    engine = ConversionEngine()
    converter = engine.make_converter("COO", "CSR")
    assert converter.src_format is COO and converter.dst_format is CSR
    assert "def convert_COO_to_CSR" in converter.source


def test_engine_default_options_and_backend_policy():
    engine = ConversionEngine(
        options=PlanOptions(force_unsequenced_edges=True), backend="scalar"
    )
    converter = engine.make_converter(COO, CSR)
    assert converter.backend == "scalar"
    assert "prefix_sum" in converter.source  # unsequenced edges honoured


def test_generated_source_defaults_to_scalar():
    engine = ConversionEngine()
    assert "for " in engine.generated_source(COO, CSR)


def test_invalid_capacity_and_backend_rejected():
    with pytest.raises(ValueError):
        ConversionEngine(capacity=0)
    with pytest.raises(Exception):
        ConversionEngine(backend="simd")


def test_unknown_route_mode_rejected():
    engine = ConversionEngine()
    with pytest.raises(ValueError):
        engine.convert(small_coo(), CSR, route="scenic")


# ----------------------------------------------------------------------
# cache behaviour and telemetry


def test_cache_stats_are_exact():
    engine = ConversionEngine(capacity=8)
    engine.make_converter(COO, CSR)  # miss + compile
    engine.make_converter(COO, CSR)  # converter hit
    engine.make_converter(COO, CSC)  # miss + compile
    stats = engine.cache_stats()
    assert stats["requests"] == 3
    assert stats["hits"] == 1
    assert stats["misses"] == 2
    assert stats["compiles"] == 2
    assert stats["kernel_hits"] == 0
    assert stats["evictions"] == 0
    assert stats["size"] == 2
    assert stats["capacity"] == 8
    assert stats["compile_seconds"] > 0.0


def test_structural_twins_share_kernels():
    engine = ConversionEngine()
    twin = make_format(
        "CSRTWIN_ENGINE",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    engine.make_converter(COO, CSR)
    converter = engine.make_converter(COO, twin)
    stats = engine.cache_stats()
    assert stats["compiles"] == 1  # kernel shared structurally
    assert stats["kernel_hits"] == 1
    assert converter.dst_format is twin  # but the converter knows its format


def test_lru_eviction_evicts_and_recompiles():
    engine = ConversionEngine(capacity=2)
    engine.make_converter(COO, CSR)
    engine.make_converter(COO, CSC)
    engine.make_converter(COO, DIA)  # evicts COO->CSR
    stats = engine.cache_stats()
    assert stats["compiles"] == 3
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    engine.make_converter(COO, CSR)  # gone: must recompile
    stats = engine.cache_stats()
    assert stats["compiles"] == 4
    assert stats["evictions"] == 2


def test_lru_order_is_recency_not_insertion():
    engine = ConversionEngine(capacity=2)
    engine.make_converter(COO, CSR)
    engine.make_converter(COO, CSC)
    engine.make_converter(COO, CSR)  # refresh CSR
    engine.make_converter(COO, DIA)  # evicts CSC, not CSR
    engine.make_converter(COO, CSR)
    assert engine.cache_stats()["compiles"] == 3  # CSR never recompiled


def test_evicted_converters_still_work_and_results_stay_correct():
    engine = ConversionEngine(capacity=1)
    tensor = small_coo()
    first = engine.make_converter(COO, CSR)
    engine.make_converter(COO, CSC)  # evicts the CSR kernel
    assert first(tensor).to_coo() == tensor.to_coo()  # object keeps working
    again = engine.convert(tensor, CSR)  # recompiled transparently
    assert again.to_coo() == tensor.to_coo()


def test_clear_cache_forces_recompile():
    engine = ConversionEngine()
    engine.make_converter(COO, CSR)
    engine.clear_cache()
    assert engine.cache_stats()["size"] == 0
    engine.make_converter(COO, CSR)
    assert engine.cache_stats()["compiles"] == 2


def test_pair_counts():
    engine = ConversionEngine()
    tensor = small_coo()
    engine.convert(tensor, CSR)
    engine.convert(tensor, CSR)
    engine.convert(tensor, CSC)
    assert engine.pair_counts() == {("COO", "CSR"): 2, ("COO", "CSC"): 1}
    assert engine.cache_stats()["conversions"] == 3


def test_warmup_precompiles():
    engine = ConversionEngine()
    assert engine.warmup([("COO", "CSR"), (COO, ELL)]) == 2
    compiled = engine.cache_stats()["compiles"]
    assert compiled >= 2
    engine.convert(small_coo(), CSR)
    assert engine.cache_stats()["compiles"] == compiled  # no compile at use


def test_warmup_compiles_route_hops():
    engine = ConversionEngine()
    engine.warmup([("HASH", "CSR")])
    compiled = engine.cache_stats()["compiles"]
    # the routed hop COO->CSR (vector) was compiled during warmup
    engine.make_converter("COO", "CSR", backend="vector")
    assert engine.cache_stats()["compiles"] == compiled


# ----------------------------------------------------------------------
# thread safety


def test_concurrent_converts_never_double_compile():
    engine = ConversionEngine()
    tensor = small_coo()
    want = tensor.to_coo()
    barrier = threading.Barrier(8)
    errors = []

    def hammer():
        barrier.wait()
        for _ in range(25):
            out = engine.convert(tensor, CSR, route="direct")
            if out.to_coo() != want:
                errors.append("wrong result")

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(lambda _: hammer(), range(8)))

    assert not errors
    stats = engine.cache_stats()
    assert stats["compiles"] == 1  # never double-compiled
    assert stats["requests"] == 8 * 25
    # several threads may converter-miss before the first insert, but
    # every request is accounted for and the kernel compiled only once
    assert stats["hits"] + stats["misses"] == 8 * 25
    assert 1 <= stats["misses"] <= 8
    assert stats["conversions"] == 8 * 25
    assert stats["size"] == 1 and stats["converter_size"] == 1


def test_cache_hits_do_not_wait_behind_a_compile(monkeypatch):
    """Compilation happens outside the engine lock: a hit for an already
    cached pair returns promptly while another pair is mid-compile."""
    import sys
    import time as time_mod

    engine_mod = sys.modules["repro.convert.engine"]

    engine = ConversionEngine()
    engine.make_converter(COO, CSR)  # cached ahead of the stall
    release = threading.Event()
    in_compile = threading.Event()
    real_plan = engine_mod.plan_conversion

    def slow_plan(*args, **kwargs):
        in_compile.set()
        release.wait(timeout=10)
        return real_plan(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "plan_conversion", slow_plan)
    worker = threading.Thread(target=lambda: engine.make_converter(COO, CSC))
    worker.start()
    try:
        assert in_compile.wait(timeout=10)  # CSC compile is now stalled
        start = time_mod.perf_counter()
        engine.make_converter(COO, CSR)  # must not queue behind it
        hit_seconds = time_mod.perf_counter() - start
    finally:
        release.set()
        worker.join()
    assert hit_seconds < 1.0, hit_seconds
    assert engine.cache_stats()["compiles"] == 2


def test_concurrent_distinct_pairs_fill_cache_consistently():
    engine = ConversionEngine()
    targets = [CSR, CSC, DIA, ELL, BCSR(2, 2)]
    tensor = small_coo()

    def work(dst):
        for _ in range(10):
            engine.convert(tensor, dst, route="direct")

    with ThreadPoolExecutor(max_workers=5) as pool:
        list(pool.map(work, targets))

    stats = engine.cache_stats()
    assert stats["compiles"] == len(targets)
    assert stats["requests"] == 50
    assert stats["misses"] == len(targets)


# ----------------------------------------------------------------------
# the stable module-level shims


def test_module_shims_delegate_to_default_engine():
    tensor = small_coo()
    before = default_engine().cache_stats()["conversions"]
    out = convert(tensor, "CSR")
    assert out.format is CSR
    assert default_engine().cache_stats()["conversions"] == before + 1
    assert make_converter("COO", "CSR") is default_engine().make_converter(COO, CSR)


def test_top_level_exports():
    assert repro.ConversionEngine is ConversionEngine
    assert isinstance(repro.default_engine(), ConversionEngine)


def test_shim_results_match_engine_results():
    tensor = small_coo()
    mine = ConversionEngine()
    a = convert(tensor, DIA)
    b = mine.convert(tensor, DIA)
    assert a.format is b.format is DIA
    for key in a.arrays:
        assert np.array_equal(a.arrays[key], b.arrays[key])
    assert np.array_equal(a.vals, b.vals)
    assert a.metadata == b.metadata


def test_failed_route_validation_leaves_counters_untouched():
    engine = ConversionEngine()
    tensor = small_coo()
    with pytest.raises(ValueError):
        engine.convert(tensor, CSR, route="scenic")
    stats = engine.cache_stats()
    assert stats["conversions"] == 0
    assert engine.pair_counts() == {}


# ----------------------------------------------------------------------
# the persistent (on-disk) kernel cache


def test_engine_without_cache_dir_reports_zero_disk_stats():
    engine = ConversionEngine()
    engine.make_converter(COO, CSR)
    stats = engine.cache_stats()
    assert stats["disk_hits"] == 0 and stats["disk_writes"] == 0


def test_disk_cache_writes_then_serves_a_warm_engine(tmp_path):
    cache = str(tmp_path / "kernels")
    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR)
    cold.make_converter(CSR, CSC)
    cold_stats = cold.cache_stats()
    assert cold_stats["compiles"] == 2
    assert cold_stats["disk_writes"] == 2
    assert cold_stats["disk_hits"] == 0

    warm = ConversionEngine(cache_dir=cache)
    out = warm.convert(small_coo(), CSR)
    assert out.to_coo() == small_coo().to_coo()
    warm.make_converter(CSR, CSC)
    warm_stats = warm.cache_stats()
    assert warm_stats["compiles"] == 0
    assert warm_stats["disk_hits"] == 2
    assert warm_stats["disk_writes"] == 0


def test_disk_cache_results_bit_identical_to_fresh_compile(tmp_path):
    cache = str(tmp_path / "kernels")
    tensor = small_coo()
    cold = ConversionEngine(cache_dir=cache)
    a = cold.convert(tensor, DIA)
    warm = ConversionEngine(cache_dir=cache)
    b = warm.convert(tensor, DIA)
    assert warm.cache_stats()["compiles"] == 0
    for key in a.arrays:
        assert np.array_equal(a.arrays[key], b.arrays[key])
    assert np.array_equal(a.vals, b.vals)
    assert a.metadata == b.metadata


def test_disk_cache_keyed_by_options_and_backend(tmp_path):
    cache = str(tmp_path / "kernels")
    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR, backend="scalar")
    warm = ConversionEngine(cache_dir=cache)
    warm.make_converter(COO, CSR, backend="vector")  # different record
    assert warm.cache_stats()["compiles"] == 1
    warm.make_converter(
        COO, CSR, options=PlanOptions(force_unsequenced_edges=True),
        backend="scalar",
    )  # different options: also a fresh compile
    assert warm.cache_stats()["compiles"] == 2
    warm.make_converter(COO, CSR, backend="scalar")  # the cold record
    stats = warm.cache_stats()
    assert stats["compiles"] == 2 and stats["disk_hits"] == 1


def test_corrupt_disk_records_are_ignored_and_rewritten(tmp_path):
    import os

    cache = str(tmp_path / "kernels")
    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR)
    (record,) = [
        os.path.join(cache, name) for name in os.listdir(cache)
        if name.endswith(".json")
    ]
    with open(record, "w") as handle:
        handle.write("{ definitely not a kernel record")
    warm = ConversionEngine(cache_dir=cache)
    out = warm.convert(small_coo(), CSR)
    assert out.to_coo() == small_coo().to_coo()
    stats = warm.cache_stats()
    assert stats["compiles"] == 1  # recompiled past the corrupt record
    assert stats["disk_writes"] == 1  # and healed the cache


def test_structural_twins_share_disk_records(tmp_path):
    cache = str(tmp_path / "kernels")
    cold = ConversionEngine(cache_dir=cache)
    cold.make_converter(COO, CSR)
    twin = make_format(
        "DISKTWIN_CSR",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    warm = ConversionEngine(cache_dir=cache)
    converter = warm.make_converter(COO, twin)
    assert warm.cache_stats()["compiles"] == 0
    assert warm.cache_stats()["disk_hits"] == 1
    assert converter.dst_format is twin  # re-tagged to the requested twin
    out = warm.convert(small_coo(), twin)
    assert out.format is twin


# ----------------------------------------------------------------------
# shutdown and interpreter-exit hygiene


def test_shutdown_is_idempotent_and_engine_stays_usable():
    engine = ConversionEngine(workers=2)
    pool = engine.worker_pool(2)
    pool.map(lambda lo, hi: hi - lo, pool.bounds(4))
    engine.shutdown()
    engine.shutdown()  # second call is a no-op, not an error
    # pools restart lazily: the engine still converts (chunked included)
    out = engine.convert(small_coo(), CSR, parallel=2)
    assert out.format is CSR
    engine.shutdown()


def test_concurrent_shutdowns_do_not_race():
    engine = ConversionEngine(workers=2)
    pool = engine.worker_pool(2)
    pool.map(lambda lo, hi: hi - lo, pool.bounds(1 << 18))
    with ThreadPoolExecutor(max_workers=4) as pool_:
        for future in [pool_.submit(engine.shutdown) for _ in range(8)]:
            future.result()


def test_default_engine_registers_atexit_shutdown():
    import atexit

    from repro.convert import engine as engine_module

    default_engine()  # ensure the default engine exists
    assert engine_module._ATEXIT_REGISTERED
    # the hook targets whatever engine is default at exit time, and
    # running it now must be harmless (idempotent shutdown)
    engine_module._shutdown_default_engine()
    assert default_engine().convert(small_coo(), CSR).format is CSR
    atexit.unregister(engine_module._shutdown_default_engine)
    atexit.register(engine_module._shutdown_default_engine)


# ----------------------------------------------------------------------
# hop observation (the serving layer's data-cache seam)


def test_hop_observer_sees_every_hop_with_timings():
    engine = ConversionEngine()
    seen = []
    engine.add_hop_observer(
        lambda hop, src, dst, options, seconds: seen.append(
            (hop.src.name, hop.dst.name, src, dst, seconds)
        )
    )
    tensor = small_coo()
    out = engine.convert(tensor, CSR)
    assert len(seen) == 1
    src_name, dst_name, src, dst, seconds = seen[0]
    assert (src_name, dst_name) == ("COO", "CSR")
    assert src is tensor and dst is out
    assert seconds >= 0.0


def test_hop_observer_sees_routed_intermediates():
    from repro.formats import HASH

    engine = ConversionEngine()
    seen = []
    engine.add_hop_observer(
        lambda hop, src, dst, options, seconds: seen.append(
            (hop.src.name, hop.dst.name)
        )
    )
    tensor = reference_build(
        HASH, (30, 30),
        [(i, (i * 7) % 30) for i in range(30)], [float(i) for i in range(30)],
    )
    engine.convert(tensor, CSR, route="auto")
    plan = engine.plan(HASH, CSR, nnz=tensor.nnz_stored)
    assert len(seen) == len(plan.hops)
    assert [pair for pair in seen] == [
        (hop.src.name, hop.dst.name) for hop in plan.hops
    ]


def test_hop_observer_remove_and_exception_isolation():
    engine = ConversionEngine()
    calls = []

    def bad_observer(hop, src, dst, options, seconds):
        raise RuntimeError("observer boom")

    engine.add_hop_observer(bad_observer)
    engine.add_hop_observer(
        lambda hop, src, dst, options, seconds: calls.append(hop)
    )
    with pytest.warns(RuntimeWarning, match="observer"):
        engine.convert(small_coo(), CSR)
    assert len(calls) == 1  # the broken observer did not block the next
    # a second failure warns no more (warn-once), conversion still works
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine.convert(small_coo(), DIA)
    assert len(calls) == 2
    engine.remove_hop_observer(bad_observer)
    engine.remove_hop_observer(bad_observer)  # removing twice is a no-op


def test_engine_cache_dir_creates_nested_parents(tmp_path):
    """Regression: a cache_dir whose parents don't exist yet must be
    created (mkdir -p semantics), not crash the first compile."""
    deep = tmp_path / "a" / "b" / "c" / "kernels"
    engine = ConversionEngine(cache_dir=str(deep))
    out = engine.convert(small_coo(), CSR)
    assert out.format is CSR
    assert deep.is_dir()
    assert engine.cache_stats()["disk_writes"] >= 1
