"""Tests for tensor storage, the oracle traversal and validation."""

import numpy as np
import pytest

from repro.formats.format import FormatError
from repro.formats.library import BCSR, COO, CSC, CSR, DIA, ELL
from repro.storage.build import reference_build
from repro.storage.dense import from_dense
from repro.storage.tensor import Tensor

CELLS = [(0, 0), (1, 2), (2, 1), (3, 3)]
VALS = [1.0, 2.0, 3.0, 4.0]


def test_to_coo_round_trip():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    assert tensor.to_coo() == dict(zip(CELLS, VALS))


def test_to_dense():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    dense = tensor.to_dense()
    assert dense[1, 2] == 2.0 and dense[0, 1] == 0.0


def test_from_dense_drops_zeros():
    dense = np.zeros((3, 3))
    dense[0, 0] = 1.5
    dense[2, 1] = -2.0
    tensor = from_dense(COO, dense)
    assert tensor.to_coo() == {(0, 0): 1.5, (2, 1): -2.0}


def test_nnz_and_stored_counts():
    tensor = reference_build(ELL, (4, 4), CELLS, VALS)
    assert tensor.nnz == 4
    assert tensor.nnz_stored >= 4  # padding counts as stored


def test_dim_size_uses_meta_for_counter_dims():
    tensor = reference_build(ELL, (4, 4), CELLS, VALS)
    assert tensor.dim_size(0) == tensor.meta(0, "K") == 1
    assert tensor.dim_size(1) == 4


def test_dia_dim_lo_is_negative():
    tensor = reference_build(DIA, (4, 6), [(3, 0), (0, 5)], [1.0, 2.0])
    assert tensor.dim_lo(0) == -3
    assert tensor.dim_size(0) == 4 + 6 - 1


def test_check_accepts_reference_builders():
    for fmt in (COO, CSR, CSC, DIA, ELL, BCSR(2, 2)):
        reference_build(fmt, (4, 4), CELLS, VALS).check()


def test_check_rejects_nonmonotone_pos():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    tensor.array(1, "pos")[2] = 99
    with pytest.raises(FormatError):
        tensor.check()


def test_check_rejects_wrong_vals_length():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    tensor.vals = tensor.vals[:-1]
    with pytest.raises(FormatError):
        tensor.check()


def test_wrong_dims_rejected():
    with pytest.raises(FormatError):
        Tensor(CSR, (4,), {}, {}, np.zeros(0))


def test_duplicate_coordinates_rejected_by_builders():
    with pytest.raises(ValueError):
        reference_build(COO, (4, 4), [(0, 0), (0, 0)], [1.0, 2.0])


def test_padded_property():
    assert DIA.padded and ELL.padded and BCSR(2, 2).padded
    assert not CSR.padded and not COO.padded and not CSC.padded


def test_skip_zeros_override():
    tensor = reference_build(DIA, (3, 3), [(0, 0), (2, 2)], [1.0, 2.0])
    full = tensor.to_coo(skip_zeros=False)
    assert len(full) == 3  # one padding slot on the main diagonal
    assert tensor.to_coo() == {(0, 0): 1.0, (2, 2): 2.0}


def test_repr_mentions_format():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    assert "CSR" in repr(tensor)


def test_tensor_to_converts_with_specs_and_engines():
    from repro.convert import ConversionEngine

    coo = reference_build(COO, (4, 4), [(0, 1), (2, 3)], [1.0, 2.0])
    csr = coo.to("CSR")
    assert csr.format is CSR
    assert csr.to_coo() == coo.to_coo()
    engine = ConversionEngine()
    dia = coo.to(DIA, engine=engine)
    assert dia.format is DIA
    assert engine.cache_stats()["conversions"] == 1


def test_tensor_to_chains():
    coo = reference_build(COO, (4, 4), [(0, 0), (3, 2)], [1.0, 2.0])
    assert coo.to("CSR").to("CSC").to("COO").to_coo() == coo.to_coo()


def test_scipy_roundtrip():
    scipy_sparse = pytest.importorskip("scipy.sparse")
    dense = np.array([[0.0, 1.0, 0.0], [2.0, 0.0, 3.0], [0.0, 0.0, 4.0]])
    tensor = Tensor.from_scipy(scipy_sparse.csr_matrix(dense))
    assert tensor.format is COO
    assert np.array_equal(tensor.to_dense(), dense)
    back = tensor.to("CSR").to_scipy("csr")
    assert back.format == "csr"
    assert np.array_equal(back.toarray(), dense)


def test_from_scipy_with_target_format():
    scipy_sparse = pytest.importorskip("scipy.sparse")
    dense = np.array([[1.0, 0.0], [0.0, 2.0]])
    csr = Tensor.from_scipy(scipy_sparse.coo_matrix(dense), "CSR")
    assert csr.format is CSR
    assert np.array_equal(csr.to_dense(), dense)


def test_to_scipy_rejects_higher_order_tensors():
    pytest.importorskip("scipy.sparse")
    from repro.formats.library import COO3

    tensor = reference_build(COO3, (2, 2, 2), [(0, 1, 1)], [1.0])
    with pytest.raises(FormatError):
        tensor.to_scipy()


def test_content_digest_stable_across_equal_content():
    a = reference_build(CSR, (4, 4), CELLS, VALS)
    b = reference_build(CSR, (4, 4), CELLS, VALS)
    assert a.content_digest() == b.content_digest()
    assert len(a.content_digest()) == 64  # sha256 hex


def test_content_digest_changes_with_any_byte():
    base = reference_build(CSR, (4, 4), CELLS, VALS)
    other_vals = reference_build(CSR, (4, 4), CELLS, [1.0, 2.0, 3.0, 5.0])
    other_cells = reference_build(
        CSR, (4, 4), [(0, 0), (1, 2), (2, 1), (3, 2)], VALS
    )
    other_dims = reference_build(CSR, (4, 5), CELLS, VALS)
    digests = {
        t.content_digest()
        for t in (base, other_vals, other_cells, other_dims)
    }
    assert len(digests) == 4


def test_content_digest_distinguishes_metadata():
    a = reference_build(ELL, (4, 4), CELLS, VALS)
    b = reference_build(ELL, (4, 4), CELLS, VALS)
    b.metadata[(0, "K")] = b.meta(0, "K") + 1
    assert a.content_digest() != b.content_digest()


def test_content_digest_memo_invalidates_on_rebind():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    first = tensor.content_digest()
    assert tensor.content_digest() is first  # memoized (same str object)
    tensor.vals = tensor.vals.copy()
    tensor.vals[0] = 42.0
    assert tensor.content_digest() != first  # rebind invalidates the memo


def test_content_digest_ignores_array_layout():
    tensor = reference_build(CSR, (4, 4), CELLS, VALS)
    digest = tensor.content_digest()
    strided = reference_build(CSR, (4, 4), CELLS, VALS)
    # a non-contiguous view with the same elements hashes the same
    padded = np.zeros(len(strided.vals) * 2)
    padded[::2] = strided.vals
    strided.vals = padded[::2]
    assert not strided.vals.flags["C_CONTIGUOUS"]
    assert strided.content_digest() == digest
    # big-endian storage of the same values hashes the same too
    swapped = reference_build(CSR, (4, 4), CELLS, VALS)
    swapped.vals = swapped.vals.astype(">f8")
    assert swapped.content_digest() == digest
