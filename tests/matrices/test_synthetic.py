"""Tests for the synthetic matrix generators and the benchmark suite."""

import pytest

from repro.matrices import get_matrix, suite, synthetic


def test_stencil_diagonal_count():
    dims, coords, vals = synthetic.stencil(50, [0, -1, 1, -7, 7])
    diagonals = {j - i for i, j in coords}
    assert diagonals == {0, -1, 1, -7, 7}
    assert dims == (50, 50)
    assert len(coords) == len(vals) == len(set(coords))


def test_stencil_partial_offsets_shorter():
    _, coords, _ = synthetic.stencil(40, [0], partial=[5])
    full = sum(1 for i, j in coords if j == i)
    part = sum(1 for i, j in coords if j - i == 5)
    assert full == 40
    assert 0 < part < 35


def test_grid5_structure():
    dims, coords, _ = synthetic.grid5(4, 5)
    assert dims == (20, 20)
    # interior nodes have degree 5
    per_row = {}
    for i, _ in coords:
        per_row[i] = per_row.get(i, 0) + 1
    assert max(per_row.values()) == 5
    assert min(per_row.values()) == 3  # corners


def test_multi_band_symmetry():
    _, coords, _ = synthetic.multi_band(60, 9, 15, fill=0.8, symmetric=True, seed=4)
    cells = set(coords)
    assert all((j, i) in cells for i, j in cells)


def test_multi_band_diagonal_budget():
    _, coords, _ = synthetic.multi_band(80, 11, 20, seed=5)
    diagonals = {j - i for i, j in coords}
    assert len(diagonals) <= 11


def test_scattered_degree_cap():
    _, coords, _ = synthetic.scattered(100, 3.0, 10, seed=6)
    per_row = {}
    for i, _ in coords:
        per_row[i] = per_row.get(i, 0) + 1
    assert max(per_row.values()) <= 10


def test_power_law_has_heavy_tail():
    _, coords, _ = synthetic.power_law(400, alpha=2.0, max_degree=50, seed=7)
    per_row = {}
    for i, _ in coords:
        per_row[i] = per_row.get(i, 0) + 1
    degrees = sorted(per_row.values())
    assert degrees[-1] >= 5 * degrees[len(degrees) // 2]


def test_random_matrix_exact_nnz():
    dims, coords, vals = synthetic.random_matrix(10, 12, 37, seed=8)
    assert dims == (10, 12) and len(coords) == 37
    with pytest.raises(ValueError):
        synthetic.random_matrix(2, 2, 5)


def test_generators_are_deterministic():
    a = synthetic.scattered(50, 3.0, 9, seed=42)
    b = synthetic.scattered(50, 3.0, 9, seed=42)
    assert a == b


def test_suite_has_21_matrices():
    entries = suite(scale=0.1)
    assert len(entries) == 21
    names = {entry.paper_name for entry in entries}
    assert {"pdb1HYS", "cant", "webbase-1M", "ecology1"} <= names


def test_suite_exclusion_rules_match_paper():
    """The >75% padding rule must blank the same cells as Table 3."""
    entries = {e.paper_name: e for e in suite(scale=0.5)}
    # DIA-excluded in the paper: the many-diagonal FEM and scattered ones
    for name in ["pdb1HYS", "rma10", "consph", "cop20k_A", "shipsec1",
                 "scircuit", "mac_econ_fwd500", "pwtk", "webbase-1M"]:
        assert entries[name].dia_padding_ratio() > 0.75, name
    # DIA-included: the banded stencils and cant
    for name in ["jnlbrng1", "cant", "denormal", "Lin", "ecology1", "atmosmodd"]:
        assert entries[name].dia_padding_ratio() <= 0.75, name
    # ELL-excluded: scircuit, mac_econ, webbase
    for name in ["scircuit", "mac_econ_fwd500", "webbase-1M"]:
        assert entries[name].ell_padding_ratio() > 0.75, name
    for name in ["pdb1HYS", "cant", "cop20k_A", "shipsec1"]:
        assert entries[name].ell_padding_ratio() <= 0.75, name


def test_suite_symmetry_flags():
    entries = {e.paper_name: e for e in suite(scale=0.1)}
    nonsym = {n for n, e in entries.items() if not e.symmetric}
    assert nonsym == {
        "chem_master1", "shyy161", "Baumann", "majorbasis", "scircuit",
        "mac_econ_fwd500", "webbase-1M", "atmosmodd",
    }


def test_get_matrix_by_either_name():
    assert get_matrix("cant_s", scale=0.1).paper_name == "cant"
    assert get_matrix("cant", scale=0.1).name == "cant_s"
    with pytest.raises(KeyError):
        get_matrix("nonexistent")


def test_suite_tensor_cache():
    from repro.formats.library import CSR

    entry = get_matrix("jnlbrng1", scale=0.1)
    assert entry.tensor(CSR) is entry.tensor(CSR)
