"""Matrix Market IO tests."""

import pytest

from repro.formats.library import COO, CSR
from repro.io import (
    MatrixMarketError,
    read_matrix_market,
    read_tensor,
    write_matrix_market,
)


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "m.mtx"
    coords = [(0, 0), (2, 1), (3, 4)]
    vals = [1.5, -2.0, 3.25]
    write_matrix_market(path, (4, 5), coords, vals)
    dims, got_coords, got_vals = read_matrix_market(path)
    assert dims == (4, 5)
    assert got_coords == coords
    assert got_vals == vals


def test_read_symmetric_expands(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "% a comment line\n"
        "3 3 2\n"
        "1 1 5.0\n"
        "3 1 2.0\n"
    )
    dims, coords, vals = read_matrix_market(path)
    assert dims == (3, 3)
    assert dict(zip(coords, vals)) == {(0, 0): 5.0, (2, 0): 2.0, (0, 2): 2.0}


def test_read_skew_symmetric_negates(tmp_path):
    path = tmp_path / "k.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3.0\n"
    )
    _, coords, vals = read_matrix_market(path)
    assert dict(zip(coords, vals)) == {(1, 0): 3.0, (0, 1): -3.0}


def test_read_pattern_defaults_to_one(tmp_path):
    path = tmp_path / "p.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n1 2\n2 1\n"
    )
    _, coords, vals = read_matrix_market(path)
    assert vals == [1.0, 1.0]
    assert coords == [(0, 1), (1, 0)]


def test_read_tensor_builds_coo(tmp_path):
    path = tmp_path / "t.mtx"
    write_matrix_market(path, (3, 3), [(1, 2)], [4.0])
    tensor = read_tensor(path)
    assert tensor.format is COO
    assert tensor.to_coo() == {(1, 2): 4.0}
    csr = read_tensor(path, CSR)
    assert csr.to_coo() == {(1, 2): 4.0}


def test_errors(tmp_path):
    bad = tmp_path / "bad.mtx"
    bad.write_text("not a header\n1 1 0\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(bad)
    bad.write_text("%%MatrixMarket matrix array real general\n1 1\n1.0\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(bad)
    bad.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(bad)
    bad.write_text("%%MatrixMarket matrix coordinate real general\nnot numbers\n")
    with pytest.raises(MatrixMarketError):
        read_matrix_market(bad)


def test_gzip_roundtrip(tmp_path):
    """SuiteSparse distributes gzipped files; .mtx.gz reads and writes."""
    path = tmp_path / "m.mtx.gz"
    cells = [(0, 0), (1, 2), (3, 1)]
    write_matrix_market(path, (4, 4), cells, [1.0, 2.5, -3.0])
    import gzip

    with gzip.open(path, "rt") as handle:  # really gzipped on disk
        assert handle.readline().startswith("%%MatrixMarket")
    dims, coords, vals = read_matrix_market(path)
    assert dims == (4, 4)
    assert coords == cells
    assert vals == [1.0, 2.5, -3.0]


def test_gzip_read_tensor_matches_plain(tmp_path):
    cells = [(0, 1), (2, 2), (1, 0)]
    vals = [4.0, 5.0, 6.0]
    plain, gz = tmp_path / "t.mtx", tmp_path / "t.mtx.gz"
    write_matrix_market(plain, (3, 3), cells, vals)
    write_matrix_market(gz, (3, 3), cells, vals)
    assert read_tensor(gz).to_coo() == read_tensor(plain).to_coo()
