"""Tests for brute-force attribute query evaluation against Figure 10."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.query import QuerySpec, evaluate_query
from repro.remap import apply_remap, parse_remap

# the matrix of Figure 1 as (row, col) coordinates
FIGURE1 = [
    (0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (2, 3),
    (3, 1), (3, 3), (3, 4),
]


def test_count_per_row_matches_figure_10():
    spec = QuerySpec((0,), "count", (1,), "nir")
    result = evaluate_query(spec, FIGURE1)
    assert result == {(0,): 2, (1,): 2, (2,): 3, (3,): 3}


def test_min_max_per_row_matches_figure_10():
    lo = evaluate_query(QuerySpec((0,), "min", (1,), "minir"), FIGURE1)
    hi = evaluate_query(QuerySpec((0,), "max", (1,), "maxir"), FIGURE1)
    assert lo == {(0,): 0, (1,): 1, (2,): 0, (3,): 1}
    assert hi == {(0,): 1, (1,): 2, (2,): 3, (3,): 4}


def test_id_per_column_matches_figure_10():
    result = evaluate_query(QuerySpec((1,), "id", (), "ne"), FIGURE1)
    # columns 0-4 are nonempty, column 5 is empty (absent from the result)
    assert result == {(c,): 1 for c in range(5)}


def test_id_over_diagonals():
    # select [k] -> id() as ne on the (j-i,i,j)-remapped tensor encodes the
    # set of nonzero diagonals (Section 5.1's DIA example)
    remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), FIGURE1)
    result = evaluate_query(QuerySpec((0,), "id", (), "ne"), remapped)
    assert set(result) == {(-2,), (0,), (1,)}  # perm of Figure 2c


def test_global_bandwidth_query():
    remapped = apply_remap(parse_remap("(i,j) -> (j-i, i, j)"), FIGURE1)
    lo = evaluate_query(QuerySpec((), "min", (0,), "lb"), remapped)
    hi = evaluate_query(QuerySpec((), "max", (0,), "ub"), remapped)
    assert lo == {(): -2}
    assert hi == {(): 1}


def test_count_distinct_blocks():
    # count() counts distinct nonzero subtensors, not stored entries
    spec = QuerySpec((0,), "count", (1,), "nbr")
    remapped = apply_remap(parse_remap("(i,j) -> (i/2, j/2, i, j)"), FIGURE1)
    result = evaluate_query(spec, remapped)
    # block rows 0 and 1, distinct block-column counts
    assert result == {(0,): 2, (1,): 3}


def test_empty_input():
    assert evaluate_query(QuerySpec((0,), "count", (1,), "n"), []) == {}


@settings(max_examples=100, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=0, max_size=40, unique=True,
    )
)
def test_count_equals_row_histogram(coords):
    spec = QuerySpec((0,), "count", (1,), "n")
    result = evaluate_query(spec, coords)
    rows = {}
    for i, _ in coords:
        rows[(i,)] = rows.get((i,), 0) + 1
    assert result == rows


@settings(max_examples=100, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)),
        min_size=1, max_size=40, unique=True,
    )
)
def test_max_of_counter_equals_max_row_count_minus_one(coords):
    """The ELL identity: max(#i) == max row degree - 1."""
    remap = parse_remap("(i,j) -> (k=#i in k, i, j)")
    remapped = apply_remap(remap, coords)
    result = evaluate_query(QuerySpec((), "max", (0,), "m"), remapped)
    rows = {}
    for i, _ in coords:
        rows[i] = rows.get(i, 0) + 1
    assert result[()] == max(rows.values()) - 1
