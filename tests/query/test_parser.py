"""Tests for the attribute query language parser (Section 5.1)."""

import pytest

from repro.query import QuerySpec, QuerySyntaxError, parse_queries


def test_count_query():
    specs = parse_queries("select [i] -> count(j) as nir", dim_names=["i", "j"])
    assert specs == (QuerySpec((0,), "count", (1,), "nir"),)


def test_multi_aggregation_query():
    specs = parse_queries(
        "select [i] -> min(j) as minir, max(j) as maxir", dim_names=["i", "j"]
    )
    assert specs == (
        QuerySpec((0,), "min", (1,), "minir"),
        QuerySpec((0,), "max", (1,), "maxir"),
    )


def test_id_query_empty_group():
    specs = parse_queries("select [] -> id() as ne", dim_names=["i", "j"])
    assert specs == (QuerySpec((), "id", (), "ne"),)


def test_count_multiple_dims():
    specs = parse_queries(
        "select [i] -> count(j,k) as nnz_in_slice", dim_names=["i", "j", "k"]
    )
    assert specs == (QuerySpec((0,), "count", (1, 2), "nnz_in_slice"),)


def test_default_dim_names():
    specs = parse_queries("select [] -> max(i1) as max_crd", ndims=3)
    assert specs == (QuerySpec((), "max", (0,), "max_crd"),)


def test_figure_10_queries():
    # the three example queries of Figure 10
    q1 = parse_queries("select [i] -> count(j) as nir", dim_names=["i", "j"])
    q2 = parse_queries(
        "select [i] -> min(j) as minir, max(j) as maxir", dim_names=["i", "j"]
    )
    q3 = parse_queries("select [j] -> id() as ne", dim_names=["i", "j"])
    assert q1[0].aggr == "count"
    assert [s.aggr for s in q2] == ["min", "max"]
    assert q3[0].group_by == (1,)


def test_describe_round_trip():
    spec = QuerySpec((0,), "count", (1,), "nir")
    text = spec.describe(dim_names=["i", "j"])
    assert parse_queries(text, dim_names=["i", "j"]) == (spec,)


def test_errors():
    with pytest.raises(QuerySyntaxError):
        parse_queries("count(j) as x", dim_names=["i", "j"])  # no select
    with pytest.raises(QuerySyntaxError):
        parse_queries("select [i] -> count(z) as x", dim_names=["i", "j"])
    with pytest.raises(QuerySyntaxError):
        parse_queries("select [i] -> bogus(j) as x", dim_names=["i", "j"])
    with pytest.raises(QuerySyntaxError):
        parse_queries("select [i] -> count(j) x", dim_names=["i", "j"])
    with pytest.raises(QuerySyntaxError):
        parse_queries("select [i] -> id(j) as x", dim_names=["i", "j"])
    with pytest.raises(ValueError):
        parse_queries("select [i] -> max(j) as x")  # neither names nor ndims


def test_spec_validation():
    with pytest.raises(ValueError):
        QuerySpec((), "max", (0, 1), "two_args")
    with pytest.raises(ValueError):
        QuerySpec((), "count", (), "no_args")
    with pytest.raises(ValueError):
        QuerySpec((0,), "count", (0,), "overlap")
    with pytest.raises(ValueError):
        QuerySpec((), "sum", (0,), "unknown")
