"""ComputePlan: structure, serialization (schema 3) and the fuse gate."""

import json

import pytest

from repro.compute import COMPUTE_PLAN_SCHEMA, ComputePlan
from repro.convert import ConversionEngine
from repro.convert.context import PlanError
from repro.convert.plan import ConversionPlan
from repro.formats.library import COO, CSR


@pytest.fixture()
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


def test_plan_shape_and_terminal(engine):
    plan = engine.plan_compute(COO, "spmv", CSR, fuse=True)
    assert plan.src.name == "COO"
    assert plan.dst.name == "CSR"
    assert plan.fused
    assert plan.terminal.kind == "fused"
    assert all(h.kind not in ("fused", "compute")
               for h in plan.conversion_hops)

    mat = engine.plan_compute(COO, "spmv", CSR, fuse=False)
    assert not mat.fused
    assert mat.terminal.kind == "compute"
    # materializing keeps every conversion hop and appends the compute
    assert len(mat.hops) == len(mat.conversion_hops) + 1


def test_fused_explain_names_the_skipped_format(engine):
    plan = engine.plan_compute(COO, "spmv", CSR, fuse=True)
    text = plan.explain(engine.cost_model)
    assert "fused" in text
    assert "never materialized" in text
    assert "estimated" in text
    assert plan.estimated_cost(engine.cost_model) > 0.0


def test_sources_terminal_label_and_no_destination_arrays(engine):
    plan = engine.plan_compute(COO, "spmv", CSR, fuse=True)
    sources = plan.sources()
    terminal_label = f"{len(plan.hops) - 1}:spmv({plan.terminal.src.name})"
    assert terminal_label in sources
    for label, source in sources.items():
        if label == terminal_label:
            assert "B2_pos" not in source
            assert "B_vals" not in source


def test_json_round_trip(engine):
    plan = engine.plan_compute(COO, "spmv", CSR, fuse=True, nnz=12345)
    blob = plan.to_json()
    doc = json.loads(blob)
    assert doc["schema"] == COMPUTE_PLAN_SCHEMA == 3
    assert doc["kind"] == "repro-compute-plan"
    assert doc["op"] == "spmv"
    again = ComputePlan.from_json(blob, engine=engine)
    assert again.fused
    assert again.op.name == "spmv"
    assert again.nnz == 12345
    assert [h.kind for h in again.hops] == [h.kind for h in plan.hops]
    assert again.to_json() == blob


def test_conversion_reader_rejects_schema_3_loudly(engine):
    """An old (schema <= 2) reader must refuse a compute plan instead of
    silently replaying the conversion hops without the op."""
    blob = engine.plan_compute(COO, "spmv", CSR, fuse=True).to_json()
    with pytest.raises(PlanError, match="schema 3"):
        ConversionPlan.from_json(blob)


def test_compute_reader_rejects_conversion_plans(engine):
    blob = engine.plan(COO, CSR).to_json()
    with pytest.raises(PlanError, match="conversion plan"):
        ComputePlan.from_json(blob, engine=engine)


def test_compute_reader_rejects_newer_schema(engine):
    doc = engine.plan_compute(COO, "spmv", CSR).to_dict()
    doc["schema"] = COMPUTE_PLAN_SCHEMA + 1
    with pytest.raises(PlanError, match="newer than this reader"):
        ComputePlan.from_dict(doc, engine=engine)


def test_terminal_kind_is_validated(engine):
    mat = engine.plan_compute(COO, "spmv", CSR, fuse=False)
    assert mat.conversion_hops  # COO -> CSR materializes at least one hop
    with pytest.raises(PlanError, match="must end in a compute hop"):
        ComputePlan(
            op=mat.op, hops=mat.conversion_hops, backend=mat.backend,
            options=mat.options,
        )
    with pytest.raises(PlanError, match="no hops"):
        ComputePlan(
            op=mat.op, hops=(), backend=mat.backend, options=mat.options,
        )
    with pytest.raises(PlanError, match="only terminate"):
        ComputePlan(
            op=mat.op, hops=(mat.terminal, mat.terminal),
            backend=mat.backend, options=mat.options,
        )


def test_scale_without_destination_is_a_plan_error(engine):
    with pytest.raises(PlanError, match="materializes a destination"):
        engine.plan_compute(COO, "scale")


def test_forced_fusion_unavailable_is_loud(engine):
    """When the op cannot consume the route's pivot directly (here: a
    COO twin with its inverse mapping stripped), fuse='fused' must
    refuse instead of silently materializing."""
    import dataclasses

    from repro.compute import fusable
    from repro.formats.registry import register_format

    twin = dataclasses.replace(COO, name="COO_NOINV_PLANTEST", inverse=None)
    register_format(twin)
    assert not fusable(twin, "spmv", CSR)
    with pytest.raises(PlanError, match="cannot consume"):
        engine.plan_compute(twin, "spmv", CSR, fuse="fused")
    # auto quietly falls back to materializing for the same pipeline
    assert engine.plan_compute(twin, "spmv", CSR, fuse="auto").fuse == \
        "materialize"


def test_auto_never_fuses_on_seed_rates(engine):
    """A fresh cost model has only seeded rates; fuse='auto' must pick
    materialize no matter how attractive the seeds look."""
    assert engine.cost_model.observation_count("fused") == 0
    plan = engine.plan_compute(COO, "spmv", CSR, fuse="auto", nnz=1_000_000)
    assert plan.fuse == "materialize"
    assert not plan.fused


def test_auto_fuses_only_after_measured_win(engine):
    model = engine.cost_model
    # measured fused timings that clearly beat materialize-then-compute
    for _ in range(model.min_observations):
        model.observe("fused", 1_000_000, 1, 1e-4)
        model.observe("compute", 1_000_000, 1, 1e-2)
    plan = engine.plan_compute(COO, "spmv", CSR, fuse="auto", nnz=1_000_000)
    assert plan.fuse == "fused"


def test_auto_declines_fusion_when_measured_slower(engine):
    model = engine.cost_model
    for _ in range(model.min_observations):
        model.observe("fused", 1_000_000, 1, 10.0)   # fused measured awful
        model.observe("compute", 1_000_000, 1, 1e-6)
    plan = engine.plan_compute(COO, "spmv", CSR, fuse="auto", nnz=1_000_000)
    assert plan.fuse == "materialize"


def test_bad_fuse_value_rejected(engine):
    with pytest.raises(ValueError, match="fuse must be"):
        engine.plan_compute(COO, "spmv", CSR, fuse="maybe")
