"""Golden-file pins for the fused compute kernels.

The COO→CSR+SpMV pipeline is the paper's motivating consumer, so its
fused kernel — SpMV consuming COO directly, CSR never materialized —
is pinned verbatim for the scalar (Python) and native (C) lowerings.
Any change to the emitted passes shows up as a readable diff.  If a
change is *intended*, regenerate the pin with
``plan_compute_kernel(COO, "spmv", backend=...).source``.
"""

import pathlib

import pytest

from repro.compute import plan_compute_kernel
from repro.formats.library import COO

GOLDEN = pathlib.Path(__file__).parent / "golden"

#: backend -> pinned file extension
PINS = {
    "scalar": "fused_coo_spmv.py.txt",
    "native": "fused_coo_spmv.c.txt",
}


@pytest.mark.parametrize("backend", sorted(PINS))
def test_fused_spmv_source_matches_golden(backend):
    want = (GOLDEN / PINS[backend]).read_text()
    got = plan_compute_kernel(COO, "spmv", backend=backend).source + "\n"
    assert got == want, (
        f"fused {backend} SpMV kernel changed; diff against "
        f"tests/compute/golden/{PINS[backend]} and regenerate if intended"
    )


def test_pinned_sources_reference_no_destination_arrays():
    """The fused kernel provably materializes nothing: the pinned
    sources never name a destination (B-prefixed) array."""
    import re

    pattern = re.compile(r"\bB\d*_(?:pos|crd|vals)\b|\bB_vals\b")
    for name in PINS.values():
        text = (GOLDEN / name).read_text()
        assert not pattern.search(text), name
