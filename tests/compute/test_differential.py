"""Property-based fused-vs-unfused differential harness.

For every fusable (source, destination) pipeline, every compute-kernel
backend, and several tensor shapes (including empty rows, the empty
tensor and third-order reductions): the fused pipeline and the
materialize-then-compute pipeline must agree to 1e-9 rtol (the fused
vector lowering reassociates the additions, so bit-identity is not the
contract here — the oracle is), and both must match the slow reference.
"""

import numpy as np
import pytest

from repro.compute import fusable, row_reduce_reference, spmv_reference
from repro.convert import ConversionEngine
from repro.formats.library import COO, COO3, CSC, CSF, CSR, DIA, ELL
from repro.ir.native import detect_toolchain
from repro.storage.build import reference_build

HAVE_CC = detect_toolchain() is not None

#: Second-order pipelines whose pivot the compute layer can consume
#: directly.  The planner may route; fusion folds the *last* hop.
SPMV_PAIRS = [
    (COO, CSR), (COO, DIA), (COO, CSC), (COO, ELL),
    (CSR, CSC), (CSR, DIA), (CSC, DIA), (ELL, CSR),
]

BACKENDS = ["scalar", "vector", "native"]


def _shapes():
    """Named shape builders: (name, dims, cells, vals)."""
    rng = np.random.default_rng(42)
    dims = (9, 7)
    dense_cells = [(i, j) for i in range(dims[0]) for j in range(dims[1])]
    sparse_cells = [c for k, c in enumerate(dense_cells) if k % 3 == 0]
    # empty rows: nothing stored in rows 0, 4 and the last row
    holey_cells = [(i, j) for (i, j) in sparse_cells if i not in (0, 4, 8)]
    shapes = {
        "sparse": sparse_cells,
        "empty_rows": holey_cells,
        "empty": [],
    }
    out = []
    for name, cells in shapes.items():
        vals = rng.uniform(0.5, 1.5, len(cells))
        out.append((name, dims, cells, list(vals)))
    return out


SHAPES = _shapes()


def _backends():
    for backend in BACKENDS:
        if backend == "native" and not HAVE_CC:
            yield pytest.param(backend,
                               marks=pytest.mark.skip(reason="no C toolchain"))
        else:
            yield backend


@pytest.fixture(scope="module")
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


@pytest.mark.parametrize("backend", list(_backends()))
@pytest.mark.parametrize("shape", [s[0] for s in SHAPES])
@pytest.mark.parametrize(
    "src,dst", SPMV_PAIRS, ids=[f"{s.name}_{d.name}" for s, d in SPMV_PAIRS]
)
def test_fused_spmv_matches_materialized_and_oracle(
    engine, src, dst, shape, backend
):
    name, dims, cells, vals = next(s for s in SHAPES if s[0] == shape)
    tensor = reference_build(src, dims, cells, vals)
    rng = np.random.default_rng(7)
    x = rng.uniform(0.5, 1.5, dims[1])

    fused_plan = engine.plan_compute(
        src, "spmv", dst, fuse=True, backend=backend, nnz=tensor.nnz_stored
    )
    mat_plan = engine.plan_compute(
        src, "spmv", dst, fuse=False, backend=backend, nnz=tensor.nnz_stored
    )
    assert fused_plan.fused and not mat_plan.fused
    y_fused = engine.run_compute_plan(fused_plan, tensor, x=x)
    y_mat = engine.run_compute_plan(mat_plan, tensor, x=x)
    want = spmv_reference(tensor, x)
    np.testing.assert_allclose(y_fused, y_mat, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(y_fused, want, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("backend", list(_backends()))
@pytest.mark.parametrize("shape", ["sparse", "empty_rows", "empty"])
def test_fused_third_order_row_reduce(engine, shape, backend):
    """Third-order pipeline: COO3 -> CSF with the reduction fused over
    the COO3 source (CSF is never materialized)."""
    rng = np.random.default_rng(3)
    dims = (5, 4, 3)
    all_cells = [(i, j, k) for i in range(5) for j in range(4)
                 for k in range(3)]
    cells = {
        "sparse": all_cells[::4],
        "empty_rows": [c for c in all_cells[::4] if c[0] not in (0, 2)],
        "empty": [],
    }[shape]
    vals = list(rng.uniform(0.5, 1.5, len(cells)))
    tensor = reference_build(COO3, dims, cells, vals)

    fused_plan = engine.plan_compute(
        COO3, "row_reduce", CSF, fuse=True, backend=backend,
        nnz=tensor.nnz_stored,
    )
    mat_plan = engine.plan_compute(
        COO3, "row_reduce", CSF, fuse=False, backend=backend,
        nnz=tensor.nnz_stored,
    )
    r_fused = engine.run_compute_plan(fused_plan, tensor)
    r_mat = engine.run_compute_plan(mat_plan, tensor)
    want = row_reduce_reference(tensor)
    np.testing.assert_allclose(r_fused, r_mat, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(r_fused, want, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("backend", ["scalar", "vector"])
def test_fused_scale_assembles_scaled_destination(engine, backend):
    """Scale's fused kernel IS the conversion kernel with a scaled value
    stream: the fused result equals convert-then-scale exactly."""
    name, dims, cells, vals = SHAPES[0]
    tensor = reference_build(COO, dims, cells, vals)
    plan = engine.plan_compute(
        COO, "scale", CSR, fuse=True, backend=backend, nnz=tensor.nnz_stored
    )
    out = engine.run_compute_plan(plan, tensor, alpha=2.5)
    want = tensor.to(CSR)
    assert out.format.name == "CSR"
    np.testing.assert_allclose(out.vals, np.asarray(want.vals) * 2.5)
    for key in want.arrays:
        np.testing.assert_array_equal(out.arrays[key], want.arrays[key])


def test_every_spmv_pair_is_fusable():
    for src, dst in SPMV_PAIRS:
        assert fusable(src, "spmv", dst), (src.name, dst.name)
