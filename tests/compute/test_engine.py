"""Engine execution surface: run_compute_plan, spmv sugar, stats."""

import numpy as np
import pytest

from repro.compute import scale_reference, spmv_reference
from repro.convert import ConversionEngine
from repro.formats.library import COO, CSR, DIA
from repro.storage.build import reference_build

pytest.importorskip("scipy")


@pytest.fixture()
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


@pytest.fixture()
def problem():
    rng = np.random.default_rng(11)
    dims = (20, 16)
    cells = sorted({(int(rng.integers(0, dims[0])),
                     int(rng.integers(0, dims[1]))) for _ in range(90)})
    vals = list(rng.uniform(0.5, 1.5, len(cells)))
    tensor = reference_build(COO, dims, cells, vals)
    x = rng.uniform(0.5, 1.5, dims[1])
    return tensor, x


def test_engine_spmv_matches_scipy(engine, problem):
    tensor, x = problem
    y = engine.spmv(tensor, x, via="CSR")
    want = tensor.to_scipy("csr") @ x
    np.testing.assert_allclose(y, want, rtol=1e-9, atol=1e-12)


def test_tensor_spmv_sugar(engine, problem):
    tensor, x = problem
    for fuse in ("auto", "fused", False):
        y = tensor.spmv(x, via="CSR", fuse=fuse, engine=engine)
        np.testing.assert_allclose(
            y, spmv_reference(tensor, x), rtol=1e-9, atol=1e-12
        )
    # via=None computes in the tensor's own format (no conversion hops)
    y = tensor.spmv(x, via=None, engine=engine)
    np.testing.assert_allclose(
        y, spmv_reference(tensor, x), rtol=1e-9, atol=1e-12
    )


def test_run_compute_plan_validates_source_structure(engine, problem):
    tensor, x = problem
    plan = engine.plan_compute(CSR, "spmv", DIA, fuse=True)
    with pytest.raises(ValueError, match="plan starts at CSR"):
        engine.run_compute_plan(plan, tensor, x=x)


def test_spmv_without_operand_is_loud(engine, problem):
    tensor, _ = problem
    plan = engine.plan_compute(COO, "spmv", CSR, fuse=True)
    with pytest.raises(ValueError, match="needs an operand vector x"):
        engine.run_compute_plan(plan, tensor)


def test_scale_with_alpha_matches_reference(engine, problem):
    tensor, _ = problem
    plan = engine.plan_compute(COO, "scale", CSR, fuse=False)
    out = engine.run_compute_plan(plan, tensor, alpha=3.0)
    want = scale_reference(tensor, 3.0, dst_format=CSR)
    assert out.format.name == "CSR"
    np.testing.assert_allclose(
        np.asarray(out.vals), np.asarray(want.vals), rtol=1e-12
    )
    with pytest.raises(ValueError, match="scalar alpha"):
        engine.run_compute_plan(plan, tensor)


def test_compute_stats_track_fused_runs(engine, problem):
    tensor, x = problem
    before = engine.cache_stats()
    fused = engine.plan_compute(COO, "spmv", CSR, fuse=True)
    mat = engine.plan_compute(COO, "spmv", CSR, fuse=False)
    engine.run_compute_plan(fused, tensor, x=x)
    engine.run_compute_plan(mat, tensor, x=x)
    after = engine.cache_stats()
    assert after["compute_runs"] == before["compute_runs"] + 2
    assert after["fused_runs"] == before["fused_runs"] + 1


def test_terminal_timings_feed_the_cost_model(engine):
    # the cost model ignores tiny runs (min_nnz), so build a dense
    # 70x70 problem: 4900 stored values clears the floor
    rng = np.random.default_rng(5)
    dims = (70, 70)
    cells = [(i, j) for i in range(dims[0]) for j in range(dims[1])]
    tensor = reference_build(
        COO, dims, cells, list(rng.uniform(0.5, 1.5, len(cells)))
    )
    x = rng.uniform(0.5, 1.5, dims[1])
    assert engine.cost_model.observation_count("fused") == 0
    plan = engine.plan_compute(
        COO, "spmv", CSR, fuse=True, nnz=tensor.nnz_stored
    )
    engine.run_compute_plan(plan, tensor, x=x)
    assert engine.cost_model.observation_count("fused") == 1


def test_rejects_non_compute_plans(engine, problem):
    tensor, _ = problem
    conv = engine.plan(COO, CSR)
    with pytest.raises(TypeError, match="expected a ComputePlan"):
        engine.run_compute_plan(conv, tensor)
