"""ConversionService: caching, coalescing, prefix resume, quotas.

Driven with ``asyncio.run`` directly (no async test plugin); each test
builds its own engine so counters prove exactly what ran.
"""

import asyncio

import pytest

from repro.convert import ConversionEngine, PlanOptions
from repro.formats import COO, CSR, DIA, ELL, HASH, get_format
from repro.serve import ConversionService, QuotaError, TenantPolicy
from repro.serve.datacache import tensor_nbytes

from ..support.tensorgen import serve_tensor


def _tensor(fmt=COO, count=50, dims=(14, 14), seed=0):
    return serve_tensor(fmt, count=count, dims=dims, seed=seed)


def _run(coro):
    return asyncio.run(coro)


async def _with_service(body, **kwargs):
    engine = ConversionEngine()
    service = ConversionService(engine=engine, batch_window=0.0, **kwargs)
    try:
        return await body(service, engine)
    finally:
        await service.close()
        engine.shutdown()


def test_repeat_request_is_served_without_the_engine():
    """The acceptance bar: an identical repeated request touches the
    data cache only — the engine's conversion counter stays put."""

    async def body(service, engine):
        tensor = _tensor()
        first = await service.submit(tensor, CSR)
        assert first.status == "converted"
        count_after_first = engine.pair_counts()[("COO", "CSR")]
        second = await service.submit(tensor, CSR)
        assert second.status == "cached"
        assert engine.pair_counts()[("COO", "CSR")] == count_after_first == 1
        assert second.tensor.content_digest() == first.tensor.content_digest()
        # an equal-content rebuild (different arrays, same bytes) also hits
        clone = _tensor()
        third = await service.submit(clone, CSR)
        assert third.status == "cached"
        assert engine.pair_counts()[("COO", "CSR")] == 1

    _run(_with_service(body))


def test_single_flight_coalesces_concurrent_identical_requests():
    async def body(service, engine):
        tensor = _tensor(seed=11)
        results = await asyncio.gather(
            *[service.submit(tensor, DIA) for _ in range(8)]
        )
        statuses = sorted(r.status for r in results)
        assert engine.pair_counts()[("COO", "DIA")] == 1
        assert statuses.count("converted") == 1
        assert statuses.count("coalesced") == 7
        digests = {r.tensor.content_digest() for r in results}
        assert len(digests) == 1

    _run(_with_service(body))


def test_route_prefix_is_reused_across_destinations():
    """HASH->CSR materializes the COO intermediate; HASH->DIA of the
    same payload must resume from it and skip the shared hop."""

    async def body(service, engine):
        from repro.convert.planner import structural_key

        tensor = _tensor(HASH, count=400, dims=(60, 60), seed=3)
        plan_csr = engine.plan(HASH, CSR, nnz=tensor.nnz_stored)
        plan_dia = engine.plan(HASH, DIA, nnz=tensor.nnz_stored)
        if (len(plan_csr.hops) < 2 or len(plan_dia.hops) < 2
                or structural_key(plan_csr.hops[0].dst)
                != structural_key(plan_dia.hops[0].dst)):
            pytest.skip("the pairs do not share a route prefix on this host")
        first = await service.submit(tensor, CSR)
        assert first.status == "converted"
        second = await service.submit(tensor, DIA)
        assert second.status == "prefix"
        assert second.hops_skipped >= 1
        # bit-identical to converting from scratch
        fresh = ConversionEngine()
        try:
            direct = fresh.convert(tensor, DIA)
        finally:
            fresh.shutdown()
        assert second.tensor.content_digest() == direct.content_digest()

    _run(_with_service(body))


def test_identity_request_never_converts():
    async def body(service, engine):
        tensor = _tensor()
        result = await service.submit(tensor, COO)
        assert result.status == "identity"
        assert result.tensor is tensor
        assert ("COO", "COO") not in engine.pair_counts()

    _run(_with_service(body))


def test_cached_results_are_bit_identical_to_direct_convert():
    """Acceptance sweep: serve twice per pair; both responses match a
    direct engine.convert bit for bit."""

    async def body(service, engine):
        for seed, dst in enumerate((CSR, DIA, ELL)):
            tensor = _tensor(seed=100 + seed)
            fresh = ConversionEngine()
            try:
                expected = fresh.convert(tensor, dst).content_digest()
            finally:
                fresh.shutdown()
            first = await service.submit(tensor, dst)
            second = await service.submit(tensor, dst)
            assert first.tensor.content_digest() == expected
            assert second.tensor.content_digest() == expected
            assert second.status == "cached"

    _run(_with_service(body))


def test_max_request_bytes_rejects_oversized_payloads():
    async def body(service, engine):
        service.set_policy(TenantPolicy(name="tiny", max_request_bytes=16))
        with pytest.raises(QuotaError):
            await service.submit(_tensor(), CSR, tenant="tiny")
        assert service.metrics.counters()["quota_rejections"] == 1
        assert ("COO", "CSR") not in engine.pair_counts()

    _run(_with_service(body))


def test_max_concurrent_bounds_inflight_requests():
    async def body(service, engine):
        service.set_policy(TenantPolicy(name="narrow", max_concurrent=1))
        a, b = _tensor(seed=21), _tensor(seed=22)
        first = asyncio.ensure_future(
            service.submit(a, CSR, tenant="narrow")
        )
        await asyncio.sleep(0)  # let it pass admission
        with pytest.raises(QuotaError):
            await service.submit(b, CSR, tenant="narrow")
        await first
        # with the first settled, the tenant has headroom again
        result = await service.submit(b, CSR, tenant="narrow")
        assert result.status in ("converted", "cached")

    _run(_with_service(body))


def test_max_inflight_bytes_accounts_payload_sizes():
    async def body(service, engine):
        tensor = _tensor(seed=31)
        budget = tensor_nbytes(tensor) + 1  # room for one, not two
        service.set_policy(
            TenantPolicy(name="metered", max_inflight_bytes=budget)
        )
        first = asyncio.ensure_future(
            service.submit(tensor, CSR, tenant="metered")
        )
        await asyncio.sleep(0)
        with pytest.raises(QuotaError):
            await service.submit(_tensor(seed=32), CSR, tenant="metered")
        await first

    _run(_with_service(body))


def test_tenant_options_isolate_cache_variants():
    """A tenant pinned to non-default options must not be served bytes
    cached under the default code shapes."""

    async def body(service, engine):
        custom = PlanOptions(force_counter_arrays=True)
        service.set_policy(TenantPolicy(name="strict", options=custom))
        tensor = _tensor(seed=41)
        default_result = await service.submit(tensor, CSR)
        strict_result = await service.submit(tensor, CSR, tenant="strict")
        assert default_result.status == "converted"
        assert strict_result.status == "converted"  # not a cross-variant hit
        assert engine.pair_counts()[("COO", "CSR")] == 2
        assert (strict_result.tensor.content_digest()
                == default_result.tensor.content_digest())

    _run(_with_service(body))


def test_health_and_snapshot_shapes():
    async def body(service, engine):
        await service.submit(_tensor(), CSR)
        health = service.health()
        assert health["ok"] is True
        assert "data_cache" in health
        snapshot = service.snapshot()
        assert snapshot["counters"]["responses"] == 1
        assert snapshot["engine"]["conversions"] == 1
        assert snapshot["data_cache"]["entries"] >= 1
        assert "cost_model" in snapshot

    _run(_with_service(body))


def test_submit_after_close_raises():
    async def run():
        engine = ConversionEngine()
        service = ConversionService(engine=engine, batch_window=0.0)
        await service.close()
        with pytest.raises(RuntimeError):
            await service.submit(_tensor(), CSR)
        engine.shutdown()

    _run(run())


def test_close_detaches_the_hop_observer():
    async def run():
        engine = ConversionEngine()
        service = ConversionService(engine=engine, batch_window=0.0)
        await service.submit(_tensor(seed=51), CSR)
        await service.close()
        entries_after_close = len(service.cache)
        engine.convert(_tensor(seed=52), CSR)
        assert len(service.cache) == entries_after_close
        engine.shutdown()

    _run(run())


def test_get_format_spec_strings_accepted():
    async def body(service, engine):
        result = await service.submit(_tensor(seed=61), "CSR")
        assert result.tensor.format is get_format("CSR")

    _run(_with_service(body))
