"""Serving fused pipelines: submit_compute and the /compute endpoint."""

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.convert import ConversionEngine
from repro.formats import COO, CSR, HASH
from repro.serve import (
    ConversionService,
    QuotaError,
    ServiceServer,
    TenantPolicy,
    array_from_wire,
    array_to_wire,
    tensor_from_wire,
    tensor_to_wire,
)

from ..support.tensorgen import serve_tensor


def _tensor(fmt=COO, count=50, dims=(14, 14), seed=0):
    return serve_tensor(fmt, count=count, dims=dims, seed=seed)


def _x(dims=(14, 14), seed=1):
    return np.random.default_rng(seed).uniform(0.5, 1.5, dims[1])


def _run(coro):
    return asyncio.run(coro)


async def _with_service(body, **kwargs):
    engine = ConversionEngine()
    service = ConversionService(engine=engine, batch_window=0.0, **kwargs)
    try:
        return await body(service, engine)
    finally:
        await service.close()
        engine.shutdown()


# -- service level -----------------------------------------------------


def test_compute_spmv_matches_direct_engine():
    async def body(service, engine):
        tensor, x = _tensor(), _x()
        result = await service.submit_compute(tensor, "spmv", "CSR", x=x)
        assert result.status == "computed"
        assert result.op == "spmv"
        assert result.pair == ("COO", "CSR")
        direct = ConversionEngine()
        try:
            want = direct.spmv(tensor, x, via="CSR", fuse=result.fuse)
        finally:
            direct.shutdown()
        np.testing.assert_allclose(result.result, want, rtol=1e-9)
        assert service.metrics.counters()["compute_requests"] == 1

    _run(_with_service(body))


def test_concurrent_identical_computes_single_flight():
    async def body(service, engine):
        tensor, x = _tensor(seed=3), _x(seed=4)
        results = await asyncio.gather(
            *[service.submit_compute(tensor, "spmv", "CSR", x=x)
              for _ in range(6)]
        )
        statuses = sorted(r.status for r in results)
        assert statuses.count("computed") == 1
        assert statuses.count("coalesced") == 5
        values = {np.asarray(r.result).tobytes() for r in results}
        assert len(values) == 1
        assert engine.cache_stats()["compute_runs"] == 1

    _run(_with_service(body))


def test_different_operands_do_not_coalesce():
    """The operand digest is part of the flight key: same tensor, same
    pipeline, different x must run twice and give different answers."""

    async def body(service, engine):
        tensor = _tensor(seed=5)
        a, b = await asyncio.gather(
            service.submit_compute(tensor, "spmv", "CSR", x=_x(seed=6)),
            service.submit_compute(tensor, "spmv", "CSR", x=_x(seed=7)),
        )
        assert sorted([a.status, b.status]) == ["computed", "computed"]
        assert not np.allclose(a.result, b.result)

    _run(_with_service(body))


def test_compute_resumes_from_cached_conversion_prefix():
    """A routed pipeline whose conversion hops already ran for /convert
    resumes from the cached checkpoint instead of reconverting."""

    async def body(service, engine):
        tensor = _tensor(HASH, seed=8)
        converted = await service.submit(tensor, "COO")
        assert converted.status == "converted"
        result = await service.submit_compute(
            tensor, "spmv", "DIA", x=_x(seed=9)
        )
        assert result.status == "prefix"
        assert result.hops_skipped >= 1
        direct = ConversionEngine()
        try:
            want = direct.spmv(tensor, _x(seed=9), via="DIA",
                               fuse=result.fuse)
        finally:
            direct.shutdown()
        np.testing.assert_allclose(result.result, want, rtol=1e-9)

    _run(_with_service(body))


def test_compute_scale_returns_tensor_and_seeds_cache():
    async def body(service, engine):
        tensor = _tensor(seed=10)
        result = await service.submit_compute(
            tensor, "scale", "CSR", alpha=2.0
        )
        assert result.status == "computed"
        out = result.result
        assert out.format.name == "CSR"
        np.testing.assert_allclose(
            np.asarray(out.vals),
            np.asarray(tensor.to("CSR").vals) * 2.0,
        )

    _run(_with_service(body))


def test_compute_respects_quotas():
    async def body(service, engine):
        service.set_policy(TenantPolicy(name="tiny", max_request_bytes=16))
        with pytest.raises(QuotaError):
            await service.submit_compute(
                _tensor(seed=12), "spmv", "CSR", x=_x(), tenant="tiny"
            )
        assert service.metrics.counters()["quota_rejections"] == 1

    _run(_with_service(body))


def test_fused_serves_counted():
    async def body(service, engine):
        tensor, x = _tensor(seed=13), _x(seed=13)
        result = await service.submit_compute(
            tensor, "spmv", "CSR", x=x, fuse="fused"
        )
        assert result.fuse == "fused"
        assert service.metrics.counters()["fused_serves"] == 1

    _run(_with_service(body))


# -- HTTP --------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    with ServiceServer(port=0, batch_window=0.0) as running:
        yield running


def _post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def test_http_compute_spmv(server):
    tensor, x = _tensor(seed=20), _x(seed=20)
    body = _post(server, "/compute", {
        "op": "spmv", "to": "CSR",
        "tensor": tensor_to_wire(tensor), "x": array_to_wire(x),
    })
    assert body["op"] == "spmv"
    assert body["status"] in ("computed", "prefix")
    got = array_from_wire(body["result"])
    engine = ConversionEngine()
    try:
        want = engine.spmv(tensor, x, via="CSR", fuse=body["fuse"])
    finally:
        engine.shutdown()
    np.testing.assert_allclose(got, want, rtol=1e-9)


def test_http_compute_forced_fused_matches_materialized(server):
    tensor, x = _tensor(seed=21), _x(seed=21)
    wire = tensor_to_wire(tensor)
    fused = _post(server, "/compute", {
        "op": "spmv", "to": "CSR", "tensor": wire,
        "x": array_to_wire(x), "fuse": "fused",
    })
    mat = _post(server, "/compute", {
        "op": "spmv", "to": "CSR", "tensor": wire,
        "x": array_to_wire(x), "fuse": False,
    })
    assert fused["fuse"] == "fused" and mat["fuse"] == "materialize"
    np.testing.assert_allclose(
        array_from_wire(fused["result"]),
        array_from_wire(mat["result"]), rtol=1e-9,
    )


def test_http_compute_scale_returns_wire_tensor(server):
    tensor = _tensor(seed=22)
    body = _post(server, "/compute", {
        "op": "scale", "to": "CSR",
        "tensor": tensor_to_wire(tensor), "alpha": 4.0,
    })
    out = tensor_from_wire(body["tensor"])
    np.testing.assert_allclose(
        np.asarray(out.vals), np.asarray(tensor.to("CSR").vals) * 4.0
    )


def test_http_compute_bad_requests_are_400(server):
    for payload in (
        {"tensor": tensor_to_wire(_tensor())},              # no op
        {"op": "nonsense", "tensor": tensor_to_wire(_tensor())},
        {"op": "spmv"},                                     # no tensor
    ):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/compute", payload)
        assert info.value.code == 400
