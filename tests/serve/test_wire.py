"""Wire encoding: exact roundtrips, registry verification, malformed input."""

import json

import numpy as np
import pytest

from repro.formats import BCSR, COO, CSR, DIA, ELL, HASH
from repro.serve.wire import (
    WIRE_SCHEMA,
    WireError,
    tensor_from_wire,
    tensor_to_wire,
)

from ..support.tensorgen import serve_tensor


def _tensor(fmt=COO, count=40, dims=(12, 12), seed=0):
    return serve_tensor(fmt, count=count, dims=dims, seed=seed)


@pytest.mark.parametrize("fmt", [COO, CSR, DIA, ELL, HASH, BCSR(2, 2)],
                         ids=lambda f: f.name)
def test_roundtrip_is_bit_exact(fmt):
    tensor = _tensor(fmt)
    blob = json.loads(json.dumps(tensor_to_wire(tensor)))  # through real JSON
    again = tensor_from_wire(blob)
    assert again.content_digest() == tensor.content_digest()
    assert again.dims == tensor.dims
    assert again.to_coo() == tensor.to_coo()
    again.check()


def test_decoded_arrays_are_writable_copies():
    blob = tensor_to_wire(_tensor())
    tensor = tensor_from_wire(blob)
    tensor.vals[0] = 99.0  # np.frombuffer views are read-only; copies aren't


def test_schema_mismatch_rejected():
    blob = tensor_to_wire(_tensor())
    blob["schema"] = WIRE_SCHEMA + 1
    with pytest.raises(WireError, match="schema"):
        tensor_from_wire(blob)


def test_unknown_format_rejected():
    blob = tensor_to_wire(_tensor())
    blob["format"] = {"name": "NOPE"}
    with pytest.raises(WireError, match="NOPE"):
        tensor_from_wire(blob)


def test_diverged_structural_key_rejected():
    blob = tensor_to_wire(_tensor())
    blob["format"]["structural_key"] = ["something", "else"]
    with pytest.raises(WireError, match="diverged"):
        tensor_from_wire(blob)


def test_garbage_base64_rejected():
    blob = tensor_to_wire(_tensor())
    blob["vals"]["data"] = "!!! not base64 !!!"
    with pytest.raises(WireError):
        tensor_from_wire(blob)


def test_truncated_bytes_rejected():
    blob = tensor_to_wire(_tensor())
    import base64

    raw = base64.b64decode(blob["vals"]["data"])
    blob["vals"]["data"] = base64.b64encode(raw[:-3]).decode()
    with pytest.raises(WireError, match="multiple"):
        tensor_from_wire(blob)


@pytest.mark.parametrize("mutate", [
    lambda b: b.pop("vals"),
    lambda b: b.__setitem__("dims", "12x12"),
    lambda b: b["arrays"][0].pop("name"),
    lambda b: b.__setitem__("arrays", [{"level": 0}]),
])
def test_malformed_shapes_rejected(mutate):
    blob = tensor_to_wire(_tensor())
    mutate(blob)
    with pytest.raises(WireError):
        tensor_from_wire(blob)


def test_non_object_rejected():
    with pytest.raises(WireError):
        tensor_from_wire([1, 2, 3])


def test_big_endian_arrays_normalize():
    tensor = _tensor()
    tensor.vals = tensor.vals.astype(">f8")
    blob = tensor_to_wire(tensor)
    assert np.dtype(blob["vals"]["dtype"]).byteorder != ">"
    again = tensor_from_wire(blob)
    assert list(again.vals) == list(tensor.vals)
