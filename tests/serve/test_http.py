"""End-to-end HTTP front end: endpoints, status codes, bit-identity."""

import json
import urllib.error
import urllib.request

import pytest

from repro.convert import ConversionEngine, ConversionPlan
from repro.formats import COO, HASH
from repro.serve import ServiceServer
from repro.serve.wire import tensor_from_wire, tensor_to_wire

from ..support.tensorgen import serve_tensor


def _tensor(fmt=COO, count=50, dims=(14, 14), seed=0):
    return serve_tensor(fmt, count=count, dims=dims, seed=seed)


@pytest.fixture(scope="module")
def server():
    with ServiceServer(port=0, batch_window=0.0) as running:
        yield running


def _post(server, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=60
    ) as response:
        return response.read()


def test_healthz(server):
    doc = json.loads(_get(server, "/healthz"))
    assert doc["ok"] is True
    assert "data_cache" in doc


def test_convert_roundtrip_and_cache(server):
    tensor = _tensor(seed=1)
    body = _post(server, "/convert",
                 {"to": "CSR", "tensor": tensor_to_wire(tensor)})
    assert body["status"] == "converted"
    assert body["pair"] == ["COO", "CSR"]
    out = tensor_from_wire(body["tensor"])
    engine = ConversionEngine()
    try:
        direct = engine.convert(tensor, "CSR")
    finally:
        engine.shutdown()
    assert out.content_digest() == direct.content_digest()

    again = _post(server, "/convert",
                  {"to": "CSR", "tensor": tensor_to_wire(tensor)})
    assert again["status"] == "cached"
    assert (tensor_from_wire(again["tensor"]).content_digest()
            == direct.content_digest())


def test_plan_endpoint_serves_replayable_plan_json(server):
    body = _post(server, "/plan", {"src": "HASH", "dst": "CSR"})
    plan = ConversionPlan.from_dict(body)
    assert plan.src.name == "HASH" and plan.dst.name == "CSR"
    via_get = json.loads(_get(server, "/plan?src=COO&dst=CSR"))
    assert via_get["hops"]


def test_metrics_both_renderings(server):
    _post(server, "/convert",
          {"to": "DIA", "tensor": tensor_to_wire(_tensor(seed=2))})
    text = _get(server, "/metrics").decode()
    assert "repro_requests" in text
    doc = json.loads(_get(server, "/metrics?format=json"))
    assert doc["counters"]["responses"] >= 1
    assert "engine" in doc and "data_cache" in doc


def test_tenant_rides_the_request(server):
    body = _post(server, "/convert", {
        "to": "ELL", "tenant": "acme",
        "tensor": tensor_to_wire(_tensor(seed=3)),
    })
    assert body["tenant"] == "acme"
    doc = json.loads(_get(server, "/metrics?format=json"))
    assert doc["tenants"].get("acme", 0) >= 1


def _status_of(server, path, payload=None):
    try:
        if payload is None:
            _get(server, path)
        else:
            _post(server, path, payload)
    except urllib.error.HTTPError as exc:
        body = json.loads(exc.read())
        assert "error" in body
        return exc.code
    return 200


def test_error_status_codes(server):
    assert _status_of(server, "/nope") == 404
    assert _status_of(server, "/convert", {"to": "CSR"}) == 400
    assert _status_of(server, "/convert", {
        "tensor": tensor_to_wire(_tensor()),
    }) == 400
    assert _status_of(server, "/plan", {"src": "COO"}) == 400
    assert _status_of(server, "/convert", {
        "to": "NOPE", "tensor": tensor_to_wire(_tensor()),
    }) in (400, 500)
    bad = tensor_to_wire(_tensor())
    bad["vals"]["data"] = "%%%"
    assert _status_of(server, "/convert", {"to": "CSR", "tensor": bad}) == 400


def test_routed_conversion_over_http(server):
    tensor = _tensor(HASH, count=300, dims=(50, 50), seed=4)
    body = _post(server, "/convert",
                 {"to": "CSR", "tensor": tensor_to_wire(tensor)})
    assert body["status"] in ("converted", "cached", "prefix")
    out = tensor_from_wire(body["tensor"])
    engine = ConversionEngine()
    try:
        direct = engine.convert(tensor, "CSR")
    finally:
        engine.shutdown()
    assert out.content_digest() == direct.content_digest()
