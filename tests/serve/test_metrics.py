"""Metrics: histogram percentiles, snapshot schema, Prometheus rendering."""

import random

from repro.convert import ConversionEngine
from repro.formats import COO, CSR
from repro.serve.datacache import DataCache
from repro.serve.metrics import Histogram, Metrics, render_prometheus
from repro.storage.build import reference_build


def test_histogram_percentiles_bracket_the_data():
    hist = Histogram()
    for _ in range(90):
        hist.observe(0.001)
    for _ in range(10):
        hist.observe(1.0)
    assert hist.count == 100
    p50 = hist.percentile(0.50)
    assert 0.0005 <= p50 <= 0.002  # within one log bucket of 1 ms
    p99 = hist.percentile(0.99)
    assert p99 >= 0.5
    doc = hist.to_dict()
    assert doc["count"] == 100
    assert doc["max_seconds"] == 1.0
    assert doc["sum_seconds"] > 10.0


def test_histogram_empty_and_extremes():
    hist = Histogram()
    assert hist.percentile(0.99) == 0.0
    hist.observe(-5.0)  # clamped to zero
    hist.observe(1e9)   # beyond the last bound -> overflow bucket
    assert hist.count == 2
    assert hist.percentile(1.0) == 1e9  # overflow bucket reports the max


def test_counters_and_tenants():
    metrics = Metrics()
    metrics.incr("requests")
    metrics.incr("requests", 4)
    metrics.incr_tenant("acme")
    metrics.observe_latency("cached", 0.002)
    counters = metrics.counters()
    assert counters["requests"] == 5
    assert counters["errors"] == 0  # stable schema: zero-initialized
    doc = metrics.snapshot()
    assert doc["tenants"] == {"acme": 1}
    assert doc["latency"]["cached"]["count"] == 1


def test_snapshot_folds_in_engine_and_cache():
    engine = ConversionEngine()
    cache = DataCache()
    try:
        rng = random.Random(0)
        cells = sorted({
            (rng.randrange(10), rng.randrange(10)) for _ in range(30)
        })
        tensor = reference_build(
            COO, (10, 10), cells, [1.0] * len(cells)
        )
        engine.convert(tensor, CSR)
        cache.put(tensor.content_digest(), COO, tensor)
        doc = Metrics().snapshot(engine=engine, datacache=cache)
        assert doc["engine"]["conversions"] == 1
        assert doc["pairs"] == {"COO->CSR": 1}
        assert doc["data_cache"]["entries"] == 1
        assert "version" in doc["cost_model"]
    finally:
        engine.shutdown()


def test_prometheus_rendering():
    metrics = Metrics()
    metrics.incr("requests", 3)
    metrics.incr_tenant("acme")
    metrics.observe_latency("converted", 0.01)
    cache = DataCache()
    text = render_prometheus(metrics.snapshot(datacache=cache))
    assert "repro_requests 3" in text
    assert 'repro_tenant_requests{tenant="acme"} 1' in text
    assert 'repro_latency_seconds{outcome="converted",quantile="50"}' in text
    assert "repro_data_cache_entries 0" in text
    assert text.endswith("\n")
    # every line is "name{labels} value" with a float-parseable value
    for line in text.strip().splitlines():
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)
