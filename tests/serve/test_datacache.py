"""Data cache: keying, LRU byte budget, origin stamping, the engine seam."""

import random
import threading

import pytest

from repro.convert import ConversionEngine, PlanOptions
from repro.formats import COO, CSR, HASH
from repro.serve.datacache import (
    DataCache,
    origin_digest,
    stamp_origin,
    tensor_nbytes,
)

from ..support.tensorgen import serve_tensor


def _tensor(fmt=COO, count=40, dims=(12, 12), seed=0):
    return serve_tensor(fmt, count=count, dims=dims, seed=seed)


def test_put_get_roundtrip():
    cache = DataCache()
    tensor = _tensor()
    digest = tensor.content_digest()
    assert cache.get(digest, COO) is None
    assert cache.put(digest, COO, tensor)
    assert cache.get(digest, COO) is tensor
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["bytes"] == tensor_nbytes(tensor)


def test_key_distinguishes_format_and_payload():
    cache = DataCache()
    a, b = _tensor(seed=1), _tensor(seed=2)
    cache.put(a.content_digest(), COO, a)
    assert cache.get(a.content_digest(), CSR) is None
    assert cache.get(b.content_digest(), COO) is None


def test_non_default_options_get_their_own_entries():
    cache = DataCache()
    tensor = _tensor()
    digest = tensor.content_digest()
    custom = PlanOptions(force_counter_arrays=True)
    assert custom.key() != PlanOptions().key()
    cache.put(digest, COO, tensor, options=custom)
    assert cache.get(digest, COO) is None  # default variant is separate
    assert cache.get(digest, COO, options=custom) is tensor
    # explicitly-passed default options share the None variant
    cache.put(digest, CSR, tensor, options=PlanOptions())
    assert cache.get(digest, CSR) is tensor


def test_lru_eviction_respects_byte_budget():
    tensors = [_tensor(seed=i) for i in range(4)]
    sizes = [tensor_nbytes(t) for t in tensors]
    budget = sizes[0] + sizes[1] + sizes[2]
    cache = DataCache(max_bytes=budget)
    for i, tensor in enumerate(tensors[:3]):
        cache.put(f"d{i}", COO, tensor)
    assert len(cache) == 3
    cache.get("d0", COO)  # refresh d0 so d1 is the LRU victim
    cache.put("d3", COO, tensors[3])
    assert cache.get("d1", COO) is None
    assert cache.get("d0", COO) is not None
    assert cache.current_bytes <= budget
    assert cache.stats()["evictions"] >= 1


def test_oversize_entry_is_refused():
    tensor = _tensor()
    cache = DataCache(max_bytes=tensor_nbytes(tensor) - 1)
    assert not cache.put("d", COO, tensor)
    assert len(cache) == 0
    assert cache.stats()["rejected_oversize"] == 1


def test_replacement_keeps_byte_accounting_exact():
    small, large = _tensor(count=10, seed=3), _tensor(count=80, seed=4)
    cache = DataCache()
    cache.put("d", COO, small)
    cache.put("d", COO, large)
    assert cache.current_bytes == tensor_nbytes(large)
    assert cache.stats()["replacements"] == 1
    assert len(cache) == 1


def test_discard_and_clear():
    cache = DataCache()
    tensor = _tensor()
    cache.put("d", COO, tensor)
    assert cache.discard("d", COO)
    assert not cache.discard("d", COO)
    assert cache.current_bytes == 0
    cache.put("d", COO, tensor)
    cache.clear()
    assert len(cache) == 0 and cache.current_bytes == 0


def test_origin_digest_stamping():
    tensor = _tensor()
    assert origin_digest(tensor) == tensor.content_digest()
    other = _tensor(seed=9)
    stamp_origin(other, "someone-elses-digest")
    assert origin_digest(other) == "someone-elses-digest"


def test_hop_observer_inserts_every_intermediate():
    engine = ConversionEngine()
    cache = DataCache()
    engine.add_hop_observer(cache.hop_observer())
    try:
        tensor = _tensor(HASH, count=60, dims=(16, 16), seed=5)
        digest = tensor.content_digest()
        out = engine.convert(tensor, CSR)
        # the final output is cached...
        assert cache.get(digest, CSR) is out
        # ...and when the route went through COO, so is the intermediate
        plan = engine.plan(HASH, CSR, nnz=tensor.nnz_stored)
        if len(plan.hops) > 1:
            checkpoint = cache.get(digest, plan.hops[0].dst)
            assert checkpoint is not None
            assert origin_digest(checkpoint) == digest
    finally:
        engine.shutdown()


def test_eviction_under_concurrent_load():
    """Hammer one small cache from many threads; accounting stays exact."""
    tensors = [_tensor(seed=i, count=30 + i) for i in range(8)]
    budget = max(tensor_nbytes(t) for t in tensors) * 3
    cache = DataCache(max_bytes=budget)
    errors = []

    def worker(worker_id):
        rng = random.Random(worker_id)
        try:
            for _ in range(200):
                i = rng.randrange(len(tensors))
                if rng.random() < 0.5:
                    cache.put(f"d{i}", COO, tensors[i])
                else:
                    hit = cache.get(f"d{i}", COO)
                    if hit is not None:
                        assert hit is tensors[i]
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.current_bytes <= budget
    # recompute occupancy from scratch: counters must agree with contents
    stats = cache.stats()
    live = sum(
        tensor_nbytes(entry[0]) for entry in cache._entries.values()
    )
    assert stats["bytes"] == live == cache.current_bytes


def test_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        DataCache(max_bytes=0)
