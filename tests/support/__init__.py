"""Shared test support: generators and helpers reused across suites."""
