"""One random-tensor generator, every suite.

Historically each suite grew its own ad-hoc generator (``test_chunked``
and ``test_native`` sampled dense/sparse/empty grids, ``tests/serve``
rolled duplicate-then-dedupe cell sets).  They now live here, next to
the rich property-based generator that also powers the differential
fuzzer (:mod:`repro.verify`) and the streaming harness
(``tests/stream``) — the library module is the single source of truth
so ``python -m repro.verify fuzz`` reproducer lines generate exactly
what the tests generated.

Everything is deterministic in ``seed`` and the explicit parameters.
"""

import random

from repro.storage.build import reference_build
from repro.verify import (  # noqa: F401  (re-exports)
    ORDERINGS,
    TensorCase,
    constrain_case,
    random_tensor_case,
)

__all__ = [
    "ORDERINGS",
    "TensorCase",
    "constrain_case",
    "random_problem",
    "random_tensor_case",
    "serve_tensor",
]


def random_problem(seed, m, n, style):
    """The classic backend-suite grid sampler.

    ``style`` picks the density regime: ``"empty"`` (no entries),
    ``"dense"`` (every cell) or ``"sparse"`` (a uniform random count).
    Returns ``(cells, vals)`` for :func:`reference_build`.
    """
    rng = random.Random(seed)
    capacity = m * n
    count = {"empty": 0, "dense": capacity, "sparse": rng.randint(1, capacity)}[style]
    cells = rng.sample([(i, j) for i in range(m) for j in range(n)], count)
    vals = [round(rng.uniform(0.5, 9.5), 4) for _ in cells]
    return cells, vals


def serve_tensor(fmt, count=40, dims=(12, 12), seed=0):
    """The serve-suite payload builder: ``count`` draws with replacement,
    deduplicated and sorted, values ``1.0, 2.0, ...`` in cell order."""
    rng = random.Random(seed)
    cells = sorted({
        tuple(rng.randrange(d) for d in dims) for _ in range(count)
    })
    return reference_build(
        fmt, dims, cells, [1.0 + i for i in range(len(cells))]
    )
