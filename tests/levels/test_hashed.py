"""Tests for the hashed level format and the HASH (DOK-like) format."""

import random

import pytest

from repro.convert import convert, generated_source, verify_conversion
from repro.formats import COO, CSR, DIA, ELL, HASH
from repro.ir.runtime import next_pow2
from repro.storage.build import reference_build


def _problem(seed=6, m=15, n=20, nnz=70):
    rng = random.Random(seed)
    cells = rng.sample([(i, j) for i in range(m) for j in range(n)], nnz)
    return (m, n), cells, [float(k + 1) for k in range(nnz)]


def test_next_pow2():
    assert next_pow2(0) == 2
    assert next_pow2(2) == 2
    assert next_pow2(3) == 4
    assert next_pow2(16) == 16
    assert next_pow2(17) == 32


def test_reference_builder_round_trip():
    dims, cells, vals = _problem()
    tensor = reference_build(HASH, dims, cells, vals)
    tensor.check()
    assert tensor.to_coo() == dict(zip(cells, vals))
    # load factor <= 0.5
    width = tensor.meta(1, "W")
    per_row = {}
    for i, _ in cells:
        per_row[i] = per_row.get(i, 0) + 1
    assert width >= 2 * max(per_row.values())


def test_hash_iteration_skips_empty_slots():
    dims, cells, vals = _problem(nnz=10)
    tensor = reference_build(HASH, dims, cells, vals)
    coords = [c for c, _ in tensor.paths()]
    # paths include empty slots? no — iterate() yields stored coords only
    assert len(coords) == 10


def test_conversion_to_hash_sizes_table_from_query():
    source = generated_source(COO, HASH)
    assert "next_pow2" in source
    assert "while" in source  # probing loop


@pytest.mark.parametrize("src", [COO, CSR, DIA, ELL], ids=lambda f: f.name)
def test_hash_target(src):
    dims, cells, vals = _problem(seed=8)
    tensor = reference_build(src, dims, cells, vals)
    out = convert(tensor, HASH)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


@pytest.mark.parametrize("dst", [COO, CSR, DIA, ELL], ids=lambda f: f.name)
def test_hash_source(dst):
    dims, cells, vals = _problem(seed=9)
    tensor = reference_build(HASH, dims, cells, vals)
    out = convert(tensor, dst)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


def test_hash_round_trip_via_verifier():
    assert verify_conversion(COO, HASH, trials=15, max_dim=8) > 0
    assert verify_conversion(HASH, CSR, trials=15, max_dim=8) > 0


def test_dense_single_row():
    # every column occupied in one row: probing must wrap cleanly
    cells = [(0, j) for j in range(8)]
    vals = [float(j + 1) for j in range(8)]
    out = convert(reference_build(COO, (1, 8), cells, vals), HASH)
    assert out.to_coo() == dict(zip(cells, vals))


def test_collision_heavy_insertion():
    # columns congruent mod the table width force probe chains
    cells = [(0, j) for j in (0, 16, 32, 48, 64)]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    out = convert(reference_build(COO, (1, 80), cells, vals), HASH)
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))
