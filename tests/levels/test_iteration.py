"""Unit tests for level formats' host-side iteration (the oracle side of
the coordinate hierarchy abstraction)."""

import pytest

from repro.formats.library import BCSR, COO, CSR, CSC, DIA, ELL, SKY
from repro.levels import (
    BandedLevel,
    CompressedLevel,
    DenseLevel,
    Level,
    LevelFunctionError,
    OffsetLevel,
    SingletonLevel,
    SlicedLevel,
    SqueezedLevel,
)
from repro.storage.build import reference_build

CELLS = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (2, 3),
         (3, 1), (3, 3), (3, 4)]
VALS = [5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 4.0, 9.0, 6.0, 2.5]
DIMS = (4, 6)


def _tensor(fmt):
    return reference_build(fmt, DIMS, CELLS, VALS)


def test_dense_level_iterates_full_range():
    tensor = _tensor(CSR)
    entries = list(CSR.levels[0].iterate(tensor, 0, 0, ()))
    assert entries == [(i, i) for i in range(4)]


def test_dense_level_size():
    tensor = _tensor(CSR)
    assert CSR.levels[0].size(tensor, 0, 1) == 4


def test_compressed_level_iterates_row_segment():
    tensor = _tensor(CSR)
    # row 2 has columns 0, 2, 3 (positions 4..6 in Figure 2b's layout)
    entries = list(CSR.levels[1].iterate(tensor, 1, 2, (2,)))
    assert [coord for _, coord in entries] == [0, 2, 3]
    assert CSR.levels[1].size(tensor, 1, 4) == 10


def test_singleton_level_yields_one_entry():
    tensor = _tensor(COO)
    entries = list(COO.levels[1].iterate(tensor, 1, 3, (1,)))
    assert len(entries) == 1
    assert entries[0][0] == 3  # shares the parent position


def test_squeezed_level_iterates_stored_diagonals():
    tensor = _tensor(DIA)
    entries = list(DIA.levels[0].iterate(tensor, 0, 0, ()))
    assert [coord for _, coord in entries] == [-2, 0, 1]  # Figure 2c's perm
    assert DIA.levels[0].size(tensor, 0, 1) == 3


def test_offset_level_derives_column():
    tensor = _tensor(DIA)
    # diagonal k=1, row 0 -> column 1
    entries = list(DIA.levels[2].iterate(tensor, 2, 8, (1, 0)))
    assert entries == [(8, 1)]


def test_sliced_level_iterates_k_slices():
    tensor = _tensor(ELL)
    entries = list(ELL.levels[0].iterate(tensor, 0, 0, ()))
    assert [coord for _, coord in entries] == [0, 1, 2]  # K == 3


def test_banded_level_iterates_band():
    cells = [(2, 0), (2, 2), (3, 3)]
    tensor = reference_build(SKY, (4, 4), cells, [1.0, 2.0, 3.0])
    # row 2 stores columns 0..2 (first nonzero through diagonal)
    entries = list(SKY.levels[1].iterate(tensor, 1, 2, (2,)))
    assert [coord for _, coord in entries] == [0, 1, 2]
    # row 3 stores only the diagonal
    entries = list(SKY.levels[1].iterate(tensor, 1, 3, (3,)))
    assert [coord for _, coord in entries] == [3]


def test_paths_count_matches_stored_size():
    for fmt in (COO, CSR, CSC, DIA, ELL, BCSR(2, 2)):
        tensor = _tensor(fmt)
        assert len(list(tensor.paths())) == tensor.nnz_stored


def test_level_properties():
    assert DenseLevel().full and DenseLevel().ordered
    assert not CompressedLevel().full
    assert not CompressedLevel(unique=False).unique
    assert CompressedLevel().has_edges and not SingletonLevel().has_edges
    assert BandedLevel().stores_explicit_zeros
    assert SlicedLevel().introduces_padding
    assert SqueezedLevel().introduces_padding
    assert OffsetLevel(1, 0).branchless


def test_level_signatures_distinguish_variants():
    assert CompressedLevel().signature() != CompressedLevel(unique=False).signature()
    assert SingletonLevel(ordered=False).signature() != SingletonLevel().signature()
    assert OffsetLevel(1, 0).signature() == "offset(1+0)"


def test_abstract_level_raises():
    level = Level()
    with pytest.raises(LevelFunctionError):
        list(level.iterate(None, 0, 0, ()))
    with pytest.raises(LevelFunctionError):
        level.size(None, 0, 1)
    with pytest.raises(LevelFunctionError):
        level.emit_pos(None, 0, None, ())
    with pytest.raises(LevelFunctionError):
        level.emit_seq_init_edges(None, 0, None)
    assert level.queries(0, 2) == ()
    assert level.emit_init_coords(None, 0, None) == []
