"""Tests for host-side evaluation of IR expressions."""

import pytest

from repro.ir import builder as b
from repro.ir.nodes import Call, Load, Var
from repro.utils.evaluate import evaluate_expr


def test_arithmetic():
    expr = b.add(b.mul("N", 2), b.sub("M", 1))
    assert evaluate_expr(expr, {"N": 5, "M": 3}) == 12


def test_floor_division_and_mod():
    assert evaluate_expr(b.floordiv("x", 4), {"x": -3}) == -1
    assert evaluate_expr(b.mod("x", 4), {"x": -3}) == 1


def test_bitwise_and_shifts():
    env = {"a": 6, "b": 3}
    assert evaluate_expr(b.bitand("a", "b"), env) == 2
    assert evaluate_expr(b.bitor("a", "b"), env) == 7
    assert evaluate_expr(b.bitxor("a", "b"), env) == 5
    assert evaluate_expr(b.shl("b", 2), env) == 12
    assert evaluate_expr(b.shr("a", 1), env) == 3


def test_comparisons_and_logic():
    env = {"x": 2}
    assert evaluate_expr(b.lt("x", 3), env) is True
    assert evaluate_expr(b.logical_and(b.gt("x", 0), b.lt("x", 2)), env) is False
    assert evaluate_expr(b.logical_not(b.eq("x", 2)), env) is False


def test_unary_and_minmax():
    assert evaluate_expr(b.neg("x"), {"x": 4}) == -4
    assert evaluate_expr(b.minimum("x", 2), {"x": 4}) == 2
    assert evaluate_expr(b.maximum("x", 2), {"x": 4}) == 4


def test_ternary():
    expr = b.ternary(b.lt("x", 0), 0, "x")
    assert evaluate_expr(expr, {"x": -5}) == 0
    assert evaluate_expr(expr, {"x": 5}) == 5


def test_unbound_variable_raises():
    with pytest.raises(KeyError):
        evaluate_expr(Var("nope"), {})


def test_loads_are_rejected():
    with pytest.raises(TypeError):
        evaluate_expr(Load(Var("a"), Var("i")), {"a": 1, "i": 0})


def test_unknown_call_rejected():
    with pytest.raises(TypeError):
        evaluate_expr(Call("sqrt", (Var("x"),)), {"x": 4})
