"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import _format_arg, main
from repro.convert import scipy_available
from repro.io import write_matrix_market

# With scipy importable its registered converter wins the bulk COO->CSR
# edge; the no-scipy leg keeps the generated vector kernel.
EXT = "external" if scipy_available() else "vector"


@pytest.fixture()
def mtx(tmp_path):
    path = tmp_path / "m.mtx"
    cells = [(0, 0), (1, 2), (3, 1), (3, 3)]
    write_matrix_market(path, (4, 4), cells, [1.0, 2.0, 3.0, 4.0])
    return str(path)


def test_resolve_builtin_formats():
    assert _format_arg("csr").name == "CSR"
    assert _format_arg("DIA").name == "DIA"
    assert _format_arg("BCSR2x3").params == {"M": 2, "N": 3}
    assert _format_arg("BCSR").params == {"M": 4, "N": 4}
    assert _format_arg("HICOO8").params == {"B": 8}
    with pytest.raises(SystemExit):
        _format_arg("NOPE")


def test_formats_command(capsys):
    main(["formats"])
    out = capsys.readouterr().out
    assert "CSR" in out and "DIA" in out and "remap" in out


def test_codegen_command(capsys):
    main(["codegen", "CSR", "ELL"])
    out = capsys.readouterr().out
    assert "def convert_CSR_to_ELL" in out


def test_convert_command(mtx, capsys):
    main(["convert", mtx, "--to", "CSR"])
    out = capsys.readouterr().out
    assert "COO -> CSR" in out and "4 nonzeros" in out


def test_convert_show_code(mtx, capsys):
    main(["convert", mtx, "--to", "DIA", "--show-code"])
    out = capsys.readouterr().out
    assert "def convert_COO_to_DIA" in out


def test_convert_from_format(mtx, capsys):
    main(["convert", mtx, "--from", "CSR", "--to", "CSC"])
    out = capsys.readouterr().out
    assert "CSR -> CSC" in out


def test_convert_route_direct_option(mtx, capsys):
    main(["convert", mtx, "--from", "CSR", "--to", "CSC", "--route", "direct"])
    out = capsys.readouterr().out
    assert "CSR -> CSC" in out and "routed:" not in out


def test_convert_parallel_option(mtx, capsys):
    main(["convert", mtx, "--to", "CSR", "--parallel", "2"])
    out = capsys.readouterr().out
    assert "chunked executor" in out
    main(["convert", mtx, "--to", "CSR", "--parallel", "off"])
    out = capsys.readouterr().out
    assert "chunked executor" not in out
    with pytest.raises(SystemExit):
        main(["convert", mtx, "--to", "CSR", "--parallel", "zero"])
    with pytest.raises(SystemExit):
        main(["convert", mtx, "--to", "CSR", "--parallel", "0"])


def test_convert_parallel_show_code(mtx, capsys):
    main(["convert", mtx, "--to", "CSR", "--parallel", "2", "--show-code"])
    out = capsys.readouterr().out
    assert "__chunked" in out and "chunked_yield_positions" in out


def test_codegen_chunked_backend(capsys):
    main(["codegen", "COO", "CSR", "--backend", "chunked"])
    out = capsys.readouterr().out
    assert "def convert_COO_to_CSR__chunked" in out
    with pytest.raises(SystemExit):
        main(["codegen", "CSR", "HASH", "--backend", "chunked"])


def test_route_command(capsys):
    main(["route", "HASH", "CSR"])
    out = capsys.readouterr().out
    assert "HASH -> COO -> CSR" in out
    assert "bridge" in out and EXT in out


def test_route_command_explain(capsys):
    main(["route", "HASH", "CSR", "--explain"])
    out = capsys.readouterr().out
    assert "route HASH -> CSR" in out
    assert "bulk extraction" in out
    assert "direct scalar" in out
    # the competitor table lists every priced implementation per hop
    assert "competitors for COO -> CSR:" in out
    assert "generated-" in out
    if EXT == "external":
        assert "scipy-coo-csr" in out


def test_route_command_direct_pair(capsys):
    main(["route", "COO", "CSR", "--explain"])
    out = capsys.readouterr().out
    assert "1 hop" in out and "direct conversion is the estimated optimum" in out


def test_route_command_small_nnz_stays_direct(capsys):
    main(["route", "HASH", "CSR", "--nnz", "10"])
    out = capsys.readouterr().out
    assert out.strip().startswith("HASH -> CSR")


def test_stats_command(mtx, capsys):
    main(["stats", mtx])
    out = capsys.readouterr().out
    assert "nonzero diagonals" in out and "max nnz per row" in out


def test_verify_command(capsys):
    main(["verify", "COO", "CSR", "--trials", "5", "--max-dim", "5"])
    out = capsys.readouterr().out
    assert "OK on" in out


def test_plan_command(capsys):
    main(["plan", "HASH", "CSR"])
    out = capsys.readouterr().out
    assert "plan HASH -> CSR" in out
    assert "bulk extraction" in out
    assert "seeded cost" in out or "measured cost" in out


def test_plan_command_json_save_load(tmp_path, capsys):
    path = str(tmp_path / "plan.json")
    main(["plan", "HASH", "CSR", "--json", "--save", path])
    out = capsys.readouterr().out
    assert '"repro-conversion-plan"' in out and f"wrote {path}" in out
    main(["plan", "--load", path])
    out = capsys.readouterr().out
    assert "plan HASH -> CSR" in out and "2 hops" in out


def test_plan_command_show_code(capsys):
    main(["plan", "COO", "CSR", "--backend", "vector", "--show-code"])
    out = capsys.readouterr().out
    assert "def convert_COO_to_CSR" in out
    main(["plan", "COO", "CSR", "--show-code"])
    out = capsys.readouterr().out
    # the auto plan may pick a registered converter (no generated code)
    assert "def convert_COO_to_CSR" in out or "registered converter" in out


def test_convert_explicit_route_auto_with_backend_conflicts(mtx):
    with pytest.raises(SystemExit, match="conflicts with route='auto'"):
        main(["convert", mtx, "--to", "CSR", "--route", "auto",
              "--backend", "scalar"])


def test_plan_command_requires_pair_or_load():
    with pytest.raises(SystemExit):
        main(["plan"])
    with pytest.raises(SystemExit):
        main(["plan", "--load", "/no/such/plan.json"])


def test_convert_cache_dir_warm_start(mtx, tmp_path, capsys):
    cache = str(tmp_path / "kernels")
    main(["convert", mtx, "--to", "CSR", "--cache-dir", cache])
    cold = capsys.readouterr().out
    assert "0 disk hit(s)" in cold
    main(["convert", mtx, "--to", "CSR", "--cache-dir", cache])
    warm = capsys.readouterr().out
    assert "0 compile(s)" in warm and "1 disk hit(s)" in warm


def test_plan_load_rejects_conflicting_arguments(tmp_path, capsys):
    path = str(tmp_path / "plan.json")
    main(["plan", "COO", "CSR", "--save", path])
    capsys.readouterr()
    with pytest.raises(SystemExit, match="cannot be combined"):
        main(["plan", "HASH", "CSR", "--load", path])
    with pytest.raises(SystemExit, match="cannot be combined"):
        main(["plan", "--load", path, "--nnz", "5000000"])
    with pytest.raises(SystemExit, match="cannot be combined"):
        main(["plan", "--load", path, "--backend", "vector"])
