"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import _resolve_format, main
from repro.io import write_matrix_market


@pytest.fixture()
def mtx(tmp_path):
    path = tmp_path / "m.mtx"
    cells = [(0, 0), (1, 2), (3, 1), (3, 3)]
    write_matrix_market(path, (4, 4), cells, [1.0, 2.0, 3.0, 4.0])
    return str(path)


def test_resolve_builtin_formats():
    assert _resolve_format("csr").name == "CSR"
    assert _resolve_format("DIA").name == "DIA"
    assert _resolve_format("BCSR2x3").params == {"M": 2, "N": 3}
    assert _resolve_format("BCSR").params == {"M": 4, "N": 4}
    assert _resolve_format("HICOO8").params == {"B": 8}
    with pytest.raises(SystemExit):
        _resolve_format("NOPE")


def test_formats_command(capsys):
    main(["formats"])
    out = capsys.readouterr().out
    assert "CSR" in out and "DIA" in out and "remap" in out


def test_codegen_command(capsys):
    main(["codegen", "CSR", "ELL"])
    out = capsys.readouterr().out
    assert "def convert_CSR_to_ELL" in out


def test_convert_command(mtx, capsys):
    main(["convert", mtx, "--to", "CSR"])
    out = capsys.readouterr().out
    assert "COO -> CSR" in out and "4 nonzeros" in out


def test_convert_show_code(mtx, capsys):
    main(["convert", mtx, "--to", "DIA", "--show-code"])
    out = capsys.readouterr().out
    assert "def convert_COO_to_DIA" in out


def test_convert_from_format(mtx, capsys):
    main(["convert", mtx, "--from", "CSR", "--to", "CSC"])
    out = capsys.readouterr().out
    assert "CSR -> CSC" in out


def test_stats_command(mtx, capsys):
    main(["stats", mtx])
    out = capsys.readouterr().out
    assert "nonzero diagonals" in out and "max nnz per row" in out


def test_verify_command(capsys):
    main(["verify", "COO", "CSR", "--trials", "5", "--max-dim", "5"])
    out = capsys.readouterr().out
    assert "OK on" in out
