"""Streaming reader/writer round trips and chunking mechanics."""

import numpy as np
import pytest

from repro.io.matrixmarket import read_matrix_market, write_matrix_market
from repro.io.stream import (
    BinaryStream,
    BinaryStreamWriter,
    MatrixMarketStream,
    open_stream,
    write_stream,
)

from ..support.tensorgen import random_tensor_case


def _concat(stream):
    parts = list(stream.chunks())
    return tuple(
        np.concatenate([chunk[col] for chunk in parts])
        for col in range(stream.order + 1)
    ), parts


def test_binary_roundtrip_chunked(tmp_path):
    case = random_tensor_case(13, order=2, ordering="random")
    columns = case.columns()
    path = tmp_path / "m.bin"
    write_stream(path, case.dims, list(columns[:-1]), columns[-1])
    stream = open_stream(path, chunk_nnz=7)
    assert isinstance(stream, BinaryStream)
    assert stream.dims == case.dims
    assert stream.nnz == case.nnz
    got, parts = _concat(stream)
    assert all(len(chunk[0]) <= 7 for chunk in parts)
    for col in range(3):
        assert np.array_equal(got[col], columns[col])
    assert got[0].dtype == np.int64
    assert got[2].dtype == np.float64


def test_binary_roundtrip_third_order(tmp_path):
    case = random_tensor_case(8, order=3, max_dim=9)
    columns = case.columns()
    path = tmp_path / "t.bin"
    write_stream(path, case.dims, list(columns[:-1]), columns[-1])
    stream = open_stream(path, chunk_nnz=11)
    assert stream.order == 3
    got, _ = _concat(stream)
    for col in range(4):
        assert np.array_equal(got[col], columns[col])


def test_streams_are_reiterable(tmp_path):
    """The executor makes one pass per phase: two iterations must see
    identical chunks."""
    case = random_tensor_case(21, order=2)
    columns = case.columns()
    path = tmp_path / "m.bin"
    write_stream(path, case.dims, list(columns[:-1]), columns[-1])
    stream = open_stream(path, chunk_nnz=9)
    first, _ = _concat(stream)
    second, _ = _concat(stream)
    for a, b in zip(first, second):
        assert np.array_equal(a, b)


def test_empty_stream_yields_one_empty_chunk(tmp_path):
    path = tmp_path / "empty.bin"
    write_stream(path, (5, 7), [np.zeros(0, dtype=np.int64),
                                np.zeros(0, dtype=np.int64)], np.zeros(0))
    stream = open_stream(path)
    parts = list(stream.chunks())
    assert len(parts) == 1
    assert all(part.size == 0 for part in parts[0])
    # matrix market too
    mpath = tmp_path / "empty.mtx"
    write_matrix_market(mpath, (5, 7), [], [])
    parts = list(open_stream(mpath).chunks())
    assert len(parts) == 1
    assert all(part.size == 0 for part in parts[0])


def test_incremental_writer_many_chunks(tmp_path):
    case = random_tensor_case(34, order=2, ordering="sorted")
    columns = case.columns()
    path = tmp_path / "inc.bin"
    with BinaryStreamWriter(path, case.dims, case.nnz) as writer:
        for start in range(0, case.nnz, 5):
            stop = min(start + 5, case.nnz)
            writer.append(*(col[start:stop] for col in columns))
    got, _ = _concat(open_stream(path, chunk_nnz=1000))
    for col in range(3):
        assert np.array_equal(got[col], columns[col])


def test_mtx_stream_matches_in_memory_reader(tmp_path):
    case = random_tensor_case(55, order=2)
    path = tmp_path / "m.mtx"
    write_matrix_market(path, case.dims, case.cells, case.vals)
    dims, coords, vals = read_matrix_market(path)
    stream = open_stream(path, chunk_nnz=4)
    assert isinstance(stream, MatrixMarketStream)
    assert stream.dims == tuple(dims)
    assert stream.nnz == len(coords)
    got, _ = _concat(stream)
    assert [tuple(c) for c in zip(got[0], got[1])] == coords
    assert np.array_equal(got[2], np.asarray(vals))


@pytest.mark.parametrize("symmetry,sign", [("symmetric", 1.0),
                                           ("skew-symmetric", -1.0)])
def test_mtx_symmetric_expansion_order_matches_reader(tmp_path, symmetry,
                                                      sign):
    """Mirrors interleave directly after their stored entry — the exact
    order the in-memory reader produces, which bit-identity relies on."""
    path = tmp_path / "sym.mtx"
    path.write_text(
        f"%%MatrixMarket matrix coordinate real {symmetry}\n"
        "3 3 3\n"
        "2 1 5.0\n"
        + ("2 2 6.0\n" if symmetry == "symmetric" else "3 1 6.5\n")
        + "3 2 7.0\n"
    )
    dims, coords, vals = read_matrix_market(path)
    stream = open_stream(path, chunk_nnz=2)
    assert stream.nnz == len(coords)
    got, _ = _concat(stream)
    assert [tuple(c) for c in zip(got[0], got[1])] == coords
    assert np.array_equal(got[2], np.asarray(vals))
    off_diag = [v for (i, j), v in zip(coords, vals) if i > j]
    mirrored = [v for (i, j), v in zip(coords, vals) if i < j]
    assert mirrored == [sign * v for v in off_diag]


def test_gzip_mtx_stream(tmp_path):
    case = random_tensor_case(60, order=2)
    path = tmp_path / "m.mtx.gz"
    write_matrix_market(path, case.dims, case.cells, case.vals)
    got, parts = _concat(open_stream(path, chunk_nnz=3))
    assert all(len(chunk[0]) <= 3 for chunk in parts)
    dims, coords, vals = read_matrix_market(path)
    assert [tuple(c) for c in zip(got[0], got[1])] == coords


def test_pattern_mtx_values_are_ones(tmp_path):
    path = tmp_path / "p.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 2\n"
        "1 2\n"
        "3 3\n"
    )
    got, _ = _concat(open_stream(path))
    assert np.array_equal(got[2], np.ones(2))


def test_writer_rejects_bad_shapes(tmp_path):
    writer = BinaryStreamWriter(tmp_path / "w.bin", (3, 3), nnz=4)
    with pytest.raises(ValueError, match="coordinate arrays plus values"):
        writer.append(np.zeros(2, dtype=np.int64), np.zeros(2))
    with pytest.raises(ValueError, match="disagree in length"):
        writer.append(np.zeros(2, dtype=np.int64),
                      np.zeros(3, dtype=np.int64), np.zeros(2))
    writer.abort()


def test_chunk_nnz_must_be_positive(tmp_path):
    path = tmp_path / "m.bin"
    write_stream(path, (2, 2), [np.array([0], dtype=np.int64),
                                np.array([1], dtype=np.int64)],
                 np.array([1.0]))
    with pytest.raises(ValueError, match="chunk_nnz"):
        open_stream(path, chunk_nnz=0)
