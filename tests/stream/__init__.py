"""Streaming (out-of-core) conversion suite."""
