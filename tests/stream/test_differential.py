"""Property-based differential tests: streamed == in-memory, bitwise.

Two layers of coverage:

* an exhaustive deterministic sweep — every streamable pair x several
  seeded cases x at least three chunk sizes (tiny, mid-row straddling,
  single-chunk), so the full pair matrix is exercised on every run;
* a hypothesis property over random seeds/orderings/chunk bounds for the
  structurally interesting destinations, which searches the input space
  the sweep cannot enumerate.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.convert.engine import ConversionEngine
from repro.convert.streamed import plan_streamed, streamable
from repro.formats import get_format, parse_format_spec
from repro.io.stream import write_stream
from repro.stream import convert_file, load_result

from ..support.tensorgen import constrain_case, random_tensor_case
from .strategies import (
    STREAM_DSTS_2D,
    STREAM_DSTS_3D,
    assert_stream_matches_memory,
    chunk_sizes,
    coo_source,
    mid_row_chunk,
    tensor_cases,
)


@pytest.fixture(scope="module")
def engine():
    eng = ConversionEngine()
    yield eng
    eng.shutdown()


def _dst(spec):
    return parse_format_spec(spec)


# ----------------------------------------------------------------------
# exhaustive sweep: every pair, every chunk-size class


@pytest.mark.parametrize("spec", STREAM_DSTS_2D)
def test_streamed_matches_memory_all_2d_pairs(tmp_path, engine, spec):
    dst = _dst(spec)
    assert streamable(get_format("COO"), dst)
    for seed in (1, 5, 23):
        case = random_tensor_case(seed, order=2)
        for chunk_nnz in chunk_sizes(case):
            assert_stream_matches_memory(tmp_path, engine, case, dst,
                                         chunk_nnz)


@pytest.mark.parametrize("spec", STREAM_DSTS_3D)
def test_streamed_matches_memory_all_3d_pairs(tmp_path, engine, spec):
    dst = _dst(spec)
    assert streamable(get_format("COO3"), dst)
    for seed in (2, 9):
        case = random_tensor_case(seed, order=3, max_dim=9)
        for chunk_nnz in chunk_sizes(case):
            assert_stream_matches_memory(tmp_path, engine, case, dst,
                                         chunk_nnz)


def test_chunk_boundary_lands_mid_row(tmp_path, engine):
    """The computed mid-row chunk bound really does split a row."""
    case = random_tensor_case(3, order=2, ordering="rowheavy")
    chunk = mid_row_chunk(case)
    lead = case.columns()[0]
    assert 0 < chunk < case.nnz
    assert lead[chunk - 1] == lead[chunk], "bound must land inside a run"
    for spec in ("CSR", "DCSR", "HICOO2"):
        assert_stream_matches_memory(tmp_path, engine, case, _dst(spec),
                                     chunk)


# ----------------------------------------------------------------------
# hypothesis property


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(case=tensor_cases(order=2), spec=st.sampled_from(
    ("CSR", "DCSR", "SKY", "BCSR2x2", "ELL")), data=st.data())
def test_streamed_matches_memory_property(tmp_path, engine, case, spec,
                                          data):
    chunk_nnz = data.draw(st.sampled_from(chunk_sizes(case)))
    assert_stream_matches_memory(tmp_path, engine, case, _dst(spec),
                                 chunk_nnz)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(case=tensor_cases(order=3, max_dim=8), data=st.data())
def test_streamed_matches_memory_property_3d(tmp_path, engine, case, data):
    chunk_nnz = data.draw(st.sampled_from(chunk_sizes(case)))
    assert_stream_matches_memory(tmp_path, engine, case, _dst("CSF"),
                                 chunk_nnz)


# ----------------------------------------------------------------------
# matrix market sources (plain, gzip, symmetric)


def test_streamed_from_matrix_market(tmp_path, engine):
    from repro.io.matrixmarket import write_matrix_market

    case = constrain_case(_dst("CSR"), random_tensor_case(17, order=2))
    path = tmp_path / "case.mtx"
    write_matrix_market(path, case.dims, case.cells, case.vals)
    assert_stream_matches_memory(tmp_path, engine, case, _dst("CSR"),
                                 chunk_nnz=max(1, case.nnz // 4),
                                 src_path=path)


def test_streamed_from_gzipped_matrix_market(tmp_path, engine):
    from repro.io.matrixmarket import write_matrix_market

    case = random_tensor_case(19, order=2)
    path = tmp_path / "case.mtx.gz"
    write_matrix_market(path, case.dims, case.cells, case.vals)
    assert_stream_matches_memory(tmp_path, engine, case, _dst("DCSR"),
                                 chunk_nnz=5, src_path=path)


def test_streamed_symmetric_expansion_matches_in_memory(tmp_path, engine):
    """Symmetric storage expands in the exact in-memory reader order, so
    conversion of the stream is bit-identical to read_tensor + convert."""
    from repro.io import read_tensor

    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "4 4 5\n"
        "1 1 1.5\n"
        "3 1 2.5\n"
        "3 3 3.5\n"
        "4 2 4.5\n"
        "4 4 5.5\n"
    )
    tensor = read_tensor(path)
    expected = engine.convert(tensor, _dst("CSR"), backend="vector",
                              parallel=None)
    result = convert_file(path, "CSR", tmp_path / "sym_csr", chunk_nnz=2)
    assert result.nnz == 7  # 5 stored + 2 mirrored off-diagonal entries
    got = result.load()
    for key, array in expected.arrays.items():
        assert np.array_equal(np.asarray(got.arrays[key]), np.asarray(array))
    assert np.array_equal(np.asarray(got.vals), np.asarray(expected.vals))


# ----------------------------------------------------------------------
# plan/result mechanics


def test_plan_streamed_pass_counts():
    coo = get_format("COO")
    assert plan_streamed(coo, get_format("COO")).passes == 1
    assert plan_streamed(coo, get_format("CSR")).passes == 2
    assert plan_streamed(coo, get_format("DCSR")).passes == 3
    assert plan_streamed(get_format("COO3"), get_format("CSF")).passes == 3


def test_plan_streamed_is_memoized():
    coo, csr = get_format("COO"), get_format("CSR")
    assert plan_streamed(coo, csr) is plan_streamed(coo, csr)


def test_unstreamable_pair_returns_none():
    assert plan_streamed(get_format("COO"), get_format("HASH")) is None
    assert not streamable(get_format("COO"), get_format("HASH"))
    assert not streamable(get_format("HASH"), get_format("CSR"))


def test_result_loads_memmap_backed(tmp_path, engine):
    case = random_tensor_case(29, order=2, ordering="sorted")
    columns = case.columns()
    src = tmp_path / "m.bin"
    write_stream(src, case.dims, list(columns[:-1]), columns[-1])
    result = convert_file(src, "CSR", tmp_path / "csr", chunk_nnz=16)
    assert result.passes == 2
    assert result.dst_format == "CSR"
    assert result.source_bytes == case.nnz * 24
    assert result.peak_rss_bytes > 0
    tensor = load_result(tmp_path / "csr")
    pos = tensor.arrays[(1, "pos")]
    assert isinstance(pos, np.memmap)
    assert tensor.dims == case.dims
    # result.load() is equivalent
    again = result.load()
    assert np.array_equal(np.asarray(again.vals), np.asarray(tensor.vals))


def test_engine_convert_file_delegates(tmp_path, engine):
    case = random_tensor_case(31, order=2)
    columns = case.columns()
    src = tmp_path / "m.bin"
    write_stream(src, case.dims, list(columns[:-1]), columns[-1])
    before = engine.cache_stats()["conversions"]
    result = engine.convert_file(src, "CSR", tmp_path / "out")
    assert result.dst_format == "CSR"
    assert engine.cache_stats()["conversions"] == before + 1
    expected = engine.convert(coo_source(case), _dst("CSR"),
                              backend="vector", parallel=None)
    got = result.load()
    assert np.array_equal(np.asarray(got.vals), np.asarray(expected.vals))
