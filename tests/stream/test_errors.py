"""Corrupt/truncated stream inputs: clean errors, no partial output.

Every malformed source must surface as a :class:`StreamError` (never a
numpy shape/index error), and a failed ``convert_file`` must leave the
filesystem as it found it — no output directory, no ``.tmp`` residue
(the atomic tmp-dir + rename pattern, mirroring the native ``.so``
cache).
"""

import os
import struct

import numpy as np
import pytest

from repro.io.stream import (
    BINARY_MAGIC,
    BinaryStream,
    BinaryStreamWriter,
    StreamError,
    open_stream,
    write_stream,
)
from repro.stream import convert_file

from ..support.tensorgen import random_tensor_case


def _binary_fixture(tmp_path, seed=41):
    case = random_tensor_case(seed, order=2, ordering="sorted")
    columns = case.columns()
    path = tmp_path / "m.bin"
    write_stream(path, case.dims, list(columns[:-1]), columns[-1])
    return case, path


def _assert_pristine(tmp_path, out_dir):
    assert not os.path.exists(out_dir)
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
    assert leftovers == [], f"partial files left behind: {leftovers}"


# ----------------------------------------------------------------------
# malformed matrix market


def test_malformed_mtx_header_is_clean(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%NotMatrixMarket nonsense\n1 1 1\n1 1 2.0\n")
    with pytest.raises(StreamError, match="not a Matrix Market"):
        open_stream(path)


def test_mtx_dense_layout_rejected(tmp_path):
    path = tmp_path / "dense.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
    with pytest.raises(StreamError, match="coordinate layout"):
        open_stream(path)


def test_mtx_bad_size_line(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix coordinate real general\nx y z\n")
    with pytest.raises(StreamError, match="bad size line"):
        open_stream(path)


def test_mtx_truncated_entry_list(tmp_path):
    """Header declares more entries than the file holds: the error names
    both counts and arrives as StreamError, not a numpy failure."""
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4 5\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
    )
    stream = open_stream(path, chunk_nnz=2)
    with pytest.raises(StreamError, match="declares 5 entries, found 2"):
        for _ in stream.chunks():
            pass


def test_mtx_extra_entries(tmp_path):
    path = tmp_path / "long.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4 1\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
    )
    stream = open_stream(path)
    with pytest.raises(StreamError, match="entry count disagrees"):
        for _ in stream.chunks():
            pass


def test_mtx_garbage_entry_line(tmp_path):
    path = tmp_path / "garbage.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "1 two 2.0\n"
    )
    with pytest.raises(StreamError, match="bad entry line"):
        for _ in open_stream(path).chunks():
            pass


def test_mtx_out_of_bounds_coordinate(tmp_path):
    path = tmp_path / "oob.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n"
    )
    with pytest.raises(StreamError, match="out of bounds"):
        for _ in open_stream(path).chunks():
            pass


# ----------------------------------------------------------------------
# malformed binary streams


def test_binary_mid_chunk_eof(tmp_path):
    _, path = _binary_fixture(tmp_path)
    data = path.read_bytes()
    (tmp_path / "cut.bin").write_bytes(data[: len(data) - 16])
    with pytest.raises(StreamError, match="mid-chunk EOF"):
        open_stream(tmp_path / "cut.bin")


def test_binary_trailing_data(tmp_path):
    _, path = _binary_fixture(tmp_path)
    (tmp_path / "fat.bin").write_bytes(path.read_bytes() + b"\0" * 24)
    with pytest.raises(StreamError, match="trailing data"):
        open_stream(tmp_path / "fat.bin")


def test_binary_truncated_header(tmp_path):
    path = tmp_path / "stub.bin"
    path.write_bytes(BINARY_MAGIC + b"\x01")
    with pytest.raises(StreamError, match="truncated stream header"):
        BinaryStream(path)


def test_binary_wrong_version(tmp_path):
    _, path = _binary_fixture(tmp_path)
    data = bytearray(path.read_bytes())
    struct.pack_into("<q", data, 8, 99)
    (tmp_path / "v99.bin").write_bytes(bytes(data))
    with pytest.raises(StreamError, match="unsupported stream version 99"):
        open_stream(tmp_path / "v99.bin")


def test_binary_nnz_disagrees_with_payload(tmp_path):
    """Header nnz edited up: size validation catches the lie up front."""
    case, path = _binary_fixture(tmp_path)
    data = bytearray(path.read_bytes())
    # nnz lives after magic(8)+version(8)+order(8) and the two dims
    struct.pack_into("<q", data, 24 + 16, case.nnz + 3)
    (tmp_path / "lie.bin").write_bytes(bytes(data))
    with pytest.raises(StreamError, match="disagrees with header"):
        open_stream(tmp_path / "lie.bin")


def test_missing_file(tmp_path):
    with pytest.raises(StreamError, match="no such file"):
        open_stream(tmp_path / "nope.bin")


# ----------------------------------------------------------------------
# convert_file atomicity: failures leave nothing behind


def test_convert_file_truncated_source_leaves_no_partial_output(tmp_path):
    """Mid-conversion failure (entry list shorter than the header) must
    remove the tmp dir and never create the output directory."""
    path = tmp_path / "short.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "6 6 9\n"
        "1 1 1.0\n"
        "2 3 2.0\n"
        "5 5 3.0\n"
    )
    out_dir = tmp_path / "out_csr"
    with pytest.raises(StreamError, match="header declares 9"):
        convert_file(path, "CSR", out_dir, chunk_nnz=2)
    _assert_pristine(tmp_path, out_dir)


def test_convert_file_unstreamable_pair_is_clean(tmp_path):
    _, path = _binary_fixture(tmp_path)
    out_dir = tmp_path / "out_hash"
    with pytest.raises(StreamError, match="not streamable"):
        convert_file(path, "HASH", out_dir)
    _assert_pristine(tmp_path, out_dir)


def test_convert_file_refuses_to_overwrite(tmp_path):
    case, path = _binary_fixture(tmp_path)
    out_dir = tmp_path / "out"
    first = convert_file(path, "CSR", out_dir, chunk_nnz=8)
    with pytest.raises(StreamError, match="exists"):
        convert_file(path, "CSR", out_dir, chunk_nnz=8)
    # overwrite=True replaces the old result atomically
    second = convert_file(path, "CSC", out_dir, chunk_nnz=8, overwrite=True)
    assert second.dst_format == "CSC"
    assert first.out_dir == second.out_dir
    assert second.load().format.name == "CSC"
    leftovers = [n for n in os.listdir(tmp_path) if ".tmp" in n]
    assert leftovers == []


def test_convert_file_out_of_bounds_coordinate_is_clean(tmp_path):
    """A coordinate past the declared dims fails bounds validation during
    the pass, not as a numpy scatter error, and cleans up."""
    case, path = _binary_fixture(tmp_path)
    data = bytearray(path.read_bytes())
    header = 8 + 8 + 8 + 16 + 8  # magic, version, order, dims, nnz
    struct.pack_into("<q", data, header, case.dims[0] + 7)  # first row coord
    bad = tmp_path / "oob.bin"
    bad.write_bytes(bytes(data))
    out_dir = tmp_path / "out_oob"
    with pytest.raises(StreamError, match="out of bounds"):
        convert_file(bad, "CSR", out_dir, chunk_nnz=4)
    _assert_pristine(tmp_path, out_dir)


# ----------------------------------------------------------------------
# writer discipline


def test_writer_underflow_raises_and_removes_tmp(tmp_path):
    path = tmp_path / "w.bin"
    writer = BinaryStreamWriter(path, (4, 4), nnz=10)
    writer.append(np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64),
                  np.zeros(3))
    with pytest.raises(ValueError, match="underflow"):
        writer.close()
    assert not path.exists()
    assert [n for n in os.listdir(tmp_path) if ".tmp" in n] == []


def test_writer_overflow_rejected(tmp_path):
    writer = BinaryStreamWriter(tmp_path / "w.bin", (4, 4), nnz=2)
    with pytest.raises(ValueError, match="overflow"):
        writer.append(np.zeros(3, dtype=np.int64),
                      np.zeros(3, dtype=np.int64), np.zeros(3))
    writer.abort()
    assert os.listdir(tmp_path) == []


def test_writer_abort_on_exception_leaves_nothing(tmp_path):
    with pytest.raises(RuntimeError):
        with BinaryStreamWriter(tmp_path / "w.bin", (4, 4), nnz=4):
            raise RuntimeError("boom")
    assert os.listdir(tmp_path) == []
