"""Hypothesis strategies and helpers for the streaming harness.

The generator itself is the library one (:func:`repro.verify.
random_tensor_case`, re-exported through ``tests/support/tensorgen``) so
a failing hypothesis example prints a ``seed``/``ordering`` pair that
also reproduces under ``python -m repro.verify fuzz``.  The strategies
here wrap it for property-based use and add the chunk-size machinery:
every differential property runs at several chunk sizes, including one
computed to land **mid-row** (inside a run of equal leading
coordinates), the boundary the carried-state runtime exists for.
"""

import numpy as np
from hypothesis import strategies as st

from ..support.tensorgen import TensorCase, constrain_case, random_tensor_case

#: Destination specs of every streamable pair, by source order.
STREAM_DSTS_2D = ("COO", "CSR", "CSC", "DIA", "ELL", "SKY", "DCSR",
                  "BCSR2x2", "HICOO2")
STREAM_DSTS_3D = ("COO3", "CSF")


@st.composite
def tensor_cases(draw, order=2, max_dim=24):
    """A seeded :class:`TensorCase`: hypothesis shrinks over the seed and
    ordering, the case itself is deterministic in both."""
    seed = draw(st.integers(min_value=0, max_value=2**20))
    ordering = draw(st.sampled_from(
        ("sorted", "reverse", "random", "rowheavy", "empty", "dense")
        + (("diagonal",) if order == 2 else ())
    ))
    return random_tensor_case(seed, order=order, max_dim=max_dim,
                              ordering=ordering)


def mid_row_chunk(case: TensorCase) -> int:
    """A chunk size that splits a run of equal leading coordinates.

    Finds the longest run of equal first coordinates and returns a chunk
    bound ending strictly inside it, so a destination row straddles two
    chunks (the carried group-rank/seen-table paths must fire).  Falls
    back to 3 when every slice has a single entry.
    """
    if case.nnz < 2:
        return 3
    lead = case.columns()[0]
    runs = np.flatnonzero(np.diff(lead) != 0)
    starts = np.concatenate(([0], runs + 1))
    ends = np.concatenate((runs + 1, [len(lead)]))
    lengths = ends - starts
    best = int(np.argmax(lengths))
    if lengths[best] < 2:
        return 3
    return max(1, int(starts[best]) + 1)


def chunk_sizes(case: TensorCase):
    """At least three chunk bounds: tiny, mid-row straddling, and one
    bigger than the whole stream (the degenerate single-chunk run)."""
    return sorted({
        max(1, case.nnz // 3 or 1),
        mid_row_chunk(case),
        case.nnz + 7,
    })


def coo_source(case: TensorCase):
    """The case as an in-memory COO/COO3 tensor **in stream order**.

    ``reference_build`` canonicalizes coordinate order; the differential
    property needs the in-memory engine to see exactly the byte stream's
    entry order, so the tensor is assembled directly.
    """
    from repro.formats import get_format
    from repro.storage.tensor import Tensor

    fmt = get_format("COO" if len(case.dims) == 2 else "COO3")
    columns = case.columns()
    arrays = {(0, "pos"): np.array([0, case.nnz], dtype=np.int64)}
    for k in range(len(case.dims)):
        arrays[(k, "crd")] = columns[k]
    return Tensor(fmt, case.dims, arrays, {}, columns[-1])


def assert_stream_matches_memory(tmp_path, engine, case: TensorCase,
                                 dst_format, chunk_nnz: int,
                                 src_path=None) -> None:
    """The core property: ``convert_file`` output is bit-identical to the
    in-memory vector backend on the same source."""
    from repro.io.stream import write_stream
    from repro.stream import convert_file

    case = constrain_case(dst_format, case)
    if src_path is None:
        src_path = tmp_path / f"case-{case.seed}.bin"
        columns = case.columns()
        write_stream(src_path, case.dims, list(columns[:-1]), columns[-1])
    expected = engine.convert(coo_source(case), dst_format,
                              backend="vector", parallel=None)
    out_dir = tmp_path / f"out-{case.seed}-{dst_format.name}-{chunk_nnz}"
    result = convert_file(src_path, dst_format, out_dir,
                          chunk_nnz=chunk_nnz, overwrite=True)
    got = result.load()
    assert got.dims == expected.dims
    assert set(got.arrays) == set(expected.arrays)
    for key, array in expected.arrays.items():
        streamed = np.asarray(got.arrays[key])
        assert streamed.dtype == array.dtype, key
        assert np.array_equal(streamed, np.asarray(array)), (
            f"{dst_format.name} {key} differs at chunk_nnz={chunk_nnz} "
            f"(seed={case.seed}, ordering={case.ordering})"
        )
    assert got.metadata == expected.metadata
    assert np.asarray(got.vals).dtype == np.asarray(expected.vals).dtype
    assert np.array_equal(np.asarray(got.vals), np.asarray(expected.vals))
