"""Unit tests for the coordinate remapping notation parser (Figure 8)."""

import pytest

from repro.remap import (
    RBinOp,
    RConst,
    RCounter,
    RemapSyntaxError,
    RParam,
    RVar,
    identity_remap,
    parse_remap,
)


def test_dia_remap():
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    assert remap.src_vars == ("i", "j")
    assert remap.dst_order == 3
    assert remap.dst_coords[0].expr == RBinOp("-", RVar("j"), RVar("i"))
    assert remap.dst_coords[1].expr == RVar("i")
    assert remap.dst_coords[2].expr == RVar("j")


def test_bcsr_remap_with_parameters():
    remap = parse_remap("(i,j) -> (i/M, j/N, i%M, j%N)")
    assert remap.params() == ("M", "N")
    assert remap.dst_coords[0].expr == RBinOp("/", RVar("i"), RParam("M"))


def test_ell_remap_with_counter_and_let():
    remap = parse_remap("(i,j) -> (k=#i in k, i, j)")
    coord = remap.dst_coords[0]
    assert coord.lets[0].name == "k"
    assert coord.lets[0].value == RCounter(("i",))
    assert coord.expr == RVar("k")
    assert remap.counters() == (RCounter(("i",)),)


def test_counter_without_ivars_counts_globally():
    remap = parse_remap("(i,j) -> (#, i, j)")
    assert remap.dst_coords[0].expr == RCounter(())


def test_morton_remap_parses():
    remap = parse_remap(
        "(i,j) -> (r=i/B in s=j/B in (r&1)|((s&1)<<1), i/B, j/B, i%B, j%B)"
    )
    assert remap.dst_order == 5
    coord = remap.dst_coords[0]
    assert [binding.name for binding in coord.lets] == ["r", "s"]
    assert isinstance(coord.expr, RBinOp) and coord.expr.op == "|"


def test_precedence_or_lowest():
    remap = parse_remap("(i,j) -> (i|j&1, i, j)")
    expr = remap.dst_coords[0].expr
    assert expr.op == "|"
    assert expr.rhs == RBinOp("&", RVar("j"), RConst(1))


def test_shift_binds_tighter_than_and():
    remap = parse_remap("(i,j) -> (i&j<<1, i, j)")
    expr = remap.dst_coords[0].expr
    assert expr.op == "&"
    assert expr.rhs == RBinOp("<<", RVar("j"), RConst(1))


def test_mul_binds_tighter_than_add():
    remap = parse_remap("(i,j) -> (i+j*2, i, j)")
    expr = remap.dst_coords[0].expr
    assert expr.op == "+"
    assert expr.rhs == RBinOp("*", RVar("j"), RConst(2))


def test_parentheses_override_precedence():
    remap = parse_remap("(i,j) -> ((i+j)*2, i, j)")
    expr = remap.dst_coords[0].expr
    assert expr.op == "*"


def test_unary_minus():
    remap = parse_remap("(i,j) -> (-i, i, j)")
    assert remap.dst_coords[0].expr == RBinOp("-", RConst(0), RVar("i"))


def test_roundtrip_through_str():
    texts = [
        "(i,j) -> (j-i, i, j)",
        "(i,j) -> (k=#i in k, i, j)",
        "(i,j) -> (i/M, j/N, i%M, j%N)",
        "(i,j,k) -> (i, j, k)",
    ]
    for text in texts:
        remap = parse_remap(text)
        assert parse_remap(str(remap)) == remap


def test_identity_remap_helper():
    remap = identity_remap(2)
    assert remap.is_identity()
    assert str(remap) == "(i, j) -> (i, j)"
    assert identity_remap(4).src_vars == ("i1", "i2", "i3", "i4")
    assert not parse_remap("(i,j) -> (j, i)").is_identity()


def test_syntax_errors():
    bad = [
        "(i,j) (j,i)",           # missing arrow
        "(i,j) -> (j-i, i, j",   # unclosed paren
        "(i,i) -> (i, i)",       # duplicate src var
        "(i,j) -> ()",           # empty dst — '(' then ')' fails expression
        "(i,j) -> (j !! i)",     # bad character
        "",
    ]
    for text in bad:
        with pytest.raises(RemapSyntaxError):
            parse_remap(text)


def test_let_chain():
    remap = parse_remap("(i,j) -> (a=i/2 in b=a%4 in b, i, j)")
    coord = remap.dst_coords[0]
    assert [binding.name for binding in coord.lets] == ["a", "b"]
    assert coord.lets[1].value == RBinOp("%", RVar("a"), RConst(4))
