"""Tests for lowering remap expressions to imperative IR (Section 4.2)."""

import pytest

from repro.ir import builder as b
from repro.ir.builder import NameGenerator
from repro.ir.nodes import Const, Var
from repro.ir.printer import print_expr, print_stmt
from repro.remap import RemapLoweringError, lower_remap, parse_remap
from repro.remap.ast import RCounter


def _lower(text, coord_env=None, params=None, counters=None):
    remap = parse_remap(text)
    return lower_remap(
        remap,
        coord_env or {"i": Var("i"), "j": Var("j")},
        params or {},
        counters or {},
        NameGenerator(),
    )


def test_arithmetic_is_inlined():
    lowered = _lower("(i,j) -> (j-i, i, j)")
    assert lowered.prelude == []
    assert [print_expr(e) for e in lowered.coord_exprs] == ["j - i", "i", "j"]


def test_parameters_are_substituted():
    lowered = _lower("(i,j) -> (i/M, j/N, i%M, j%N)",
                     params={"M": Const(4), "N": Const(8)})
    assert [print_expr(e) for e in lowered.coord_exprs] == [
        "i // 4", "j // 8", "i % 4", "j % 8",
    ]


def test_let_binding_emits_local():
    lowered = _lower("(i,j) -> (r=i*3+j in r*r, i, j)")
    assert len(lowered.prelude) == 1
    assert print_stmt(lowered.prelude[0]) == "r = i * 3 + j"
    assert print_expr(lowered.coord_exprs[0]) == "r * r"


def test_let_alias_of_variable_is_not_copied():
    # `k = #i in k` must reuse the counter register, not copy it
    counter = RCounter(("i",))
    lowered = _lower(
        "(i,j) -> (k=#i in k, i, j)", counters={counter: Var("count_reg")}
    )
    assert lowered.prelude == []
    assert lowered.coord_exprs[0] == Var("count_reg")


def test_morton_let_chain():
    lowered = _lower("(i,j) -> (r=i%2 in s=j%2 in r|(s<<1), i/2, j/2, i, j)")
    # r and s are constants-free expressions -> two locals, bit expr inlined
    assert [print_stmt(s) for s in lowered.prelude] == ["r = i % 2", "s = j % 2"]
    assert print_expr(lowered.coord_exprs[0]) == "r | s << 1"


def test_missing_counter_raises():
    with pytest.raises(RemapLoweringError):
        _lower("(i,j) -> (#i, i, j)")


def test_missing_param_raises():
    with pytest.raises(RemapLoweringError):
        _lower("(i,j) -> (i/M, i, j)")


def test_unbound_variable_raises():
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    with pytest.raises(RemapLoweringError):
        lower_remap(remap, {"i": Var("i")}, {}, {}, NameGenerator())


def test_lower_rexpr_simplifies():
    remap = parse_remap("(i,j) -> (i*1+0, i, j)")
    lowered = lower_remap(
        remap, {"i": Var("i"), "j": Var("j")}, {}, {}, NameGenerator()
    )
    assert lowered.coord_exprs[0] == Var("i")


def test_coordinates_can_be_expressions():
    # coordinate environment entries may themselves be expressions
    lowered = _lower(
        "(i,j) -> (j-i, i, j)",
        coord_env={"i": b.add("base", "r"), "j": Var("c")},
    )
    assert print_expr(lowered.coord_exprs[0]) == "c - (base + r)"
