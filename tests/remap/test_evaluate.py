"""Unit and property tests for reference evaluation of remappings."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.remap import CounterState, apply_remap, apply_remap_once, parse_remap


def test_dia_remap_matches_figure_5():
    # The 4x6 matrix of Figure 1, nonzeros in CSR order.
    nonzeros = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (2, 3),
                (3, 1), (3, 3), (3, 4)]
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    remapped = apply_remap(remap, nonzeros)
    assert remapped[0] == (0, 0, 0)     # 5 on the main diagonal
    assert remapped[1] == (1, 0, 1)     # 1 on the +1 diagonal
    assert remapped[4] == (-2, 2, 0)    # 8 on the -2 diagonal
    # lexicographic order of remapped coords groups by diagonal
    by_diag = sorted(remapped)
    assert [c[0] for c in by_diag] == sorted(c[0] for c in remapped)


def test_ell_counter_remap_matches_figure_9():
    # Nonzeros iterated in CSR order (Figure 2b): counters number nonzeros
    # within each row.
    nonzeros = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (2, 3),
                (3, 1), (3, 3), (3, 4)]
    remap = parse_remap("(i,j) -> (k=#i in k, i, j)")
    remapped = apply_remap(remap, nonzeros)
    slices = [c[0] for c in remapped]
    assert slices == [0, 1, 0, 1, 0, 1, 2, 0, 1, 2]


def test_global_counter():
    remap = parse_remap("(i,j) -> (#, i, j)")
    remapped = apply_remap(remap, [(0, 0), (5, 1), (2, 2)])
    assert [c[0] for c in remapped] == [0, 1, 2]


def test_counter_used_twice_sees_one_value():
    # The same counter appearing in two destination coordinates must be
    # fetched once per nonzero (it is a single logical coordinate).
    remap = parse_remap("(i,j) -> (#i, #i, i, j)")
    remapped = apply_remap(remap, [(0, 0), (0, 1)])
    assert remapped == [(0, 0, 0, 0), (1, 1, 0, 1)]


def test_counter_state_reset():
    remap = parse_remap("(i,j) -> (#i, i, j)")
    state = CounterState()
    assert apply_remap_once(remap, (0, 0), {}, state)[0] == 0
    assert apply_remap_once(remap, (0, 1), {}, state)[0] == 1
    state.reset()
    assert apply_remap_once(remap, (0, 2), {}, state)[0] == 0


def test_bcsr_remap_with_params():
    remap = parse_remap("(i,j) -> (i/M, j/N, i%M, j%N)")
    assert apply_remap(remap, [(5, 7)], params={"M": 2, "N": 4})[0] == (2, 1, 1, 3)


def test_morton_let_bindings():
    remap = parse_remap("(i,j) -> (r=i%2 in s=j%2 in (r)|((s)<<1), i/2, j/2, i, j)")
    # i=1, j=0 -> morton bit 0 set only
    assert apply_remap(remap, [(1, 0)], params={})[0][0] == 1
    # i=0, j=1 -> morton bit 1 set only
    assert apply_remap(remap, [(0, 1)], params={})[0][0] == 2


def test_floor_division_semantics():
    remap = parse_remap("(i,j) -> (j-i, (j-i)/2, i, j)")
    # j - i = -3; Python floor division: -3 // 2 == -2
    assert apply_remap(remap, [(3, 0)])[0][:2] == (-3, -2)


@settings(max_examples=100, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=30
    )
)
def test_counter_values_are_dense_per_key(coords):
    """Counters assign 0..n-1 within each group, in iteration order."""
    remap = parse_remap("(i,j) -> (k=#i in k, i, j)")
    remapped = apply_remap(remap, coords)
    seen = {}
    for (slice_k, row, _), (i, _) in zip(remapped, coords):
        assert row == i
        assert slice_k == seen.get(i, 0)
        seen[i] = slice_k + 1


@settings(max_examples=100, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=30
    )
)
def test_dia_remap_preserves_original_coords(coords):
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    for (offset, row, col), (i, j) in zip(apply_remap(remap, coords), coords):
        assert offset == j - i
        assert (row, col) == (i, j)
