"""Tests for symbolic interval analysis of remapped dimensions."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir import builder as b
from repro.ir import print_expr
from repro.remap import (
    apply_remap,
    parse_remap,
    remapped_dim_intervals,
)
from repro.remap.interval import Interval


def _pp(interval):
    def render(expr):
        return None if expr is None else print_expr(expr)

    return render(interval.lo), render(interval.hi)


def test_dia_offsets_interval():
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    lo, hi = _pp(intervals[0])
    assert lo == "-(M - 1)"
    assert hi == "N - 1"
    assert print_expr(intervals[0].extent()) == "N + M - 1"


def test_square_dia_extent_matches_paper():
    remap = parse_remap("(i,j) -> (j-i, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("N"), b.var("N")], {})
    assert print_expr(intervals[0].extent()) == "2 * N - 1"


def test_identity_dims():
    remap = parse_remap("(i,j) -> (i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    assert _pp(intervals[0]) == ("0", "M - 1")
    assert print_expr(intervals[1].extent()) == "N"


def test_counter_dim_is_unbounded():
    remap = parse_remap("(i,j) -> (k=#i in k, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    assert intervals[0].lo is not None and intervals[0].lo.value == 0
    assert intervals[0].hi is None
    assert not intervals[0].is_known()
    assert intervals[0].extent() is None


def test_bcsr_block_dims():
    remap = parse_remap("(i,j) -> (i/M, j/N, i%M, j%N)")
    intervals = remapped_dim_intervals(
        remap,
        [b.var("I"), b.var("J")],
        {"M": b.const(4), "N": b.const(8)},
    )
    assert _pp(intervals[0]) == ("0", "(I - 1) // 4")
    assert _pp(intervals[2]) == ("0", "3")
    assert _pp(intervals[3]) == ("0", "7")


def test_mod_with_symbolic_positive_divisor():
    remap = parse_remap("(i,j) -> (i%B, i, j)")
    intervals = remapped_dim_intervals(
        remap, [b.var("I"), b.var("J")], {"B": b.var("B")}
    )
    assert _pp(intervals[0]) == ("0", "B - 1")


def test_morton_bits_interval_with_constant_blocks():
    remap = parse_remap("(i,j) -> (r=i%2 in s=j%2 in r|(s<<1), i/2, j/2, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("I"), b.var("J")], {})
    # r in [0,1], s<<1 in [0,2], r|(s<<1) in [0, 3]
    assert _pp(intervals[0]) == ("0", "3")


def test_scaled_coordinate():
    remap = parse_remap("(i,j) -> (2*i, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    assert _pp(intervals[0]) == ("0", "2 * (M - 1)")


def test_negative_scale_swaps_endpoints():
    remap = parse_remap("(i,j) -> (-2*i, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    lo, hi = _pp(intervals[0])
    assert lo == "-2 * (M - 1)" or lo == "-(2 * (M - 1))"
    assert hi == "0"


def test_unknown_propagates():
    # bit-ops over symbolic operands cannot be bounded statically
    remap = parse_remap("(i,j) -> (i^j, i, j)")
    intervals = remapped_dim_intervals(remap, [b.var("M"), b.var("N")], {})
    assert intervals[0].lo is not None  # still known nonneg
    assert intervals[0].hi is None


def test_interval_exact_and_unknown_constructors():
    exact = Interval.exact(b.const(5))
    assert exact.is_known() and print_expr(exact.extent()) == "1"
    assert not Interval.unknown().is_known()


# ---------------------------------------------------------------------------
# Soundness property: evaluating the remap on random coordinates always
# lands inside the analyzed interval.
# ---------------------------------------------------------------------------

_REMAPS = [
    "(i,j) -> (j-i, i, j)",
    "(i,j) -> (i/3, j/5, i%3, j%5)",
    "(i,j) -> (i+j, i, j)",
    "(i,j) -> (2*i+j, i, j)",
    "(i,j) -> (i&3, i, j)",
    "(i,j) -> ((i%2)|((j%2)<<1), i, j)",
]


@settings(max_examples=120, deadline=None)
@given(
    text=st.sampled_from(_REMAPS),
    dims=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    data=st.data(),
)
def test_interval_analysis_is_sound(text, dims, data):
    remap = parse_remap(text)
    m, n = dims
    coords = data.draw(
        st.lists(
            st.tuples(st.integers(0, m - 1), st.integers(0, n - 1)),
            min_size=1,
            max_size=20,
        )
    )
    intervals = remapped_dim_intervals(remap, [b.const(m), b.const(n)], {})
    for remapped in apply_remap(remap, coords):
        for value, interval in zip(remapped, intervals):
            if interval.lo is not None:
                assert value >= interval.lo.value
            if interval.hi is not None:
                assert value <= interval.hi.value
