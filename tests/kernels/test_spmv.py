"""SpMV kernel tests: every format computes the same product, and the
product is invariant under generated conversions (the pipeline the paper's
introduction motivates)."""

import numpy as np
import pytest

from repro.convert import convert
from repro.formats.format import FormatError
from repro.formats.library import BCSR, COO, CSC, CSR, DIA, ELL, HICOO, SKY
from repro.kernels import spmv
from repro.matrices.synthetic import random_matrix, stencil
from repro.storage.build import reference_build

FORMATS = [COO, CSR, CSC, DIA, ELL, BCSR(2, 2), HICOO(2)]


@pytest.fixture(scope="module")
def problem():
    dims, coords, vals = random_matrix(18, 23, 90, seed=11)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, dims[1])
    dense = np.zeros(dims)
    for (i, j), v in zip(coords, vals):
        dense[i, j] = v
    return dims, coords, vals, x, dense @ x


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_spmv_matches_dense(problem, fmt):
    dims, coords, vals, x, want = problem
    tensor = reference_build(fmt, dims, coords, vals)
    np.testing.assert_allclose(spmv(tensor, x), want, atol=1e-12)


def test_spmv_skyline():
    cells = [(0, 0), (2, 0), (2, 2), (3, 1), (3, 3)]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    tensor = reference_build(SKY, (4, 4), cells, vals)
    x = np.array([1.0, 2.0, 3.0, 4.0])
    dense = np.zeros((4, 4))
    for (i, j), v in zip(cells, vals):
        dense[i, j] = v
    np.testing.assert_allclose(spmv(tensor, x), dense @ x)


def test_spmv_invariant_under_conversion(problem):
    dims, coords, vals, x, want = problem
    coo = reference_build(COO, dims, coords, vals)
    for dst in [CSR, CSC, DIA, ELL]:
        converted = convert(coo, dst)
        np.testing.assert_allclose(spmv(converted, x), want, atol=1e-12)


def test_spmv_banded_matrix_through_dia():
    dims, coords, vals = stencil(50, [0, -1, 1, -7, 7], seed=3)
    x = np.arange(dims[1], dtype=np.float64)
    csr = reference_build(CSR, dims, coords, vals)
    dia = convert(csr, DIA)
    np.testing.assert_allclose(spmv(dia, x), spmv(csr, x), atol=1e-12)


def test_spmv_rejects_bad_shapes():
    tensor = reference_build(CSR, (3, 4), [(0, 0)], [1.0])
    with pytest.raises(ValueError):
        spmv(tensor, np.zeros(3))
    from repro.formats.library import COO3

    cube = reference_build(COO3, (2, 2, 2), [(0, 0, 0)], [1.0])
    with pytest.raises(FormatError):
        spmv(cube, np.zeros(2))


def test_spmv_empty_matrix():
    tensor = reference_build(CSR, (3, 4), [], [])
    np.testing.assert_array_equal(spmv(tensor, np.ones(4)), np.zeros(3))


def test_spmv_dispatches_renamed_twin_on_structure():
    """Regression for the name-string dispatch bug: a registered format
    that is structurally CSR under a different display name must take
    the specialized CSR kernel, not the slow oracle traversal."""
    import dataclasses
    import importlib

    from repro.convert.planner import structural_key
    from repro.formats.registry import register_format

    # the package re-exports the spmv *function* under the same name, so
    # reach the module through importlib
    module = importlib.import_module("repro.kernels.spmv")

    twin = dataclasses.replace(CSR, name="SpmvTwinCSR")
    register_format(twin)
    assert structural_key(twin) == structural_key(CSR)

    dims, coords, vals = random_matrix(12, 10, 40, seed=7)
    built = reference_build(CSR, dims, coords, vals)
    # rebind the same arrays under the twin's name (reference_build
    # dispatches builders by name, so build as CSR first)
    from repro.storage.tensor import Tensor

    tensor = Tensor(twin, built.dims, dict(built.arrays),
                    dict(built.metadata), built.vals)
    x = np.random.default_rng(2).uniform(-1, 1, dims[1])

    table = module._dispatch_table()
    key = structural_key(twin)
    assert table[key] is module._csr_spmv
    calls = []
    original = table[key]
    table[key] = lambda t, v: (calls.append(1), original(t, v))[1]
    try:
        got = spmv(tensor, x)
    finally:
        table[key] = original
    assert calls, "renamed twin fell through to the oracle traversal"
    np.testing.assert_allclose(got, module._generic_spmv(tensor, x),
                               atol=1e-12)


def test_spmv_parameterized_bcsr_twin_dispatch():
    """BCSR keys include the block shape: a 2x2 tensor takes the BCSR
    fast path, and an unknown structure still computes correctly via
    the oracle."""
    import importlib

    module = importlib.import_module("repro.kernels.spmv")
    dims, coords, vals = random_matrix(12, 10, 40, seed=8)
    tensor = reference_build(BCSR(2, 2), dims, coords, vals)
    x = np.random.default_rng(3).uniform(-1, 1, dims[1])
    np.testing.assert_allclose(
        spmv(tensor, x), module._bcsr_spmv(tensor, x), atol=1e-12
    )
