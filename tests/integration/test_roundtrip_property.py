"""Hypothesis property tests over the whole pipeline.

The central invariant: for random sparse matrices and any (source, target)
format pair, building with the reference builder, converting with the
*generated* routine and reading back through the host-side oracle yields
exactly the original coordinate→value map.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.convert import convert, make_converter
from repro.formats.library import BCSR, COO, CSC, CSR, DCSR, DIA, ELL, HASH, HICOO
from repro.kernels import spmv
from repro.storage.build import reference_build

FORMATS = [COO, CSR, CSC, DIA, ELL, BCSR(2, 2), HICOO(2), DCSR, HASH]
_IDS = {f.name: f for f in FORMATS}


@st.composite
def sparse_matrices(draw):
    nrows = draw(st.integers(1, 12))
    ncols = draw(st.integers(1, 12))
    cells = draw(
        st.lists(
            st.tuples(st.integers(0, nrows - 1), st.integers(0, ncols - 1)),
            min_size=0,
            max_size=min(40, nrows * ncols),
            unique=True,
        )
    )
    vals = draw(
        st.lists(
            st.floats(0.5, 99.5, allow_nan=False),
            min_size=len(cells),
            max_size=len(cells),
        )
    )
    return (nrows, ncols), cells, vals


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    problem=sparse_matrices(),
    src_name=st.sampled_from(sorted(_IDS)),
    dst_name=st.sampled_from(sorted(_IDS)),
)
def test_conversion_round_trip(problem, src_name, dst_name):
    dims, cells, vals = problem
    tensor = reference_build(_IDS[src_name], dims, cells, vals)
    out = convert(tensor, _IDS[dst_name])
    out.check()
    assert out.to_coo() == dict(zip(cells, vals))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=sparse_matrices(), dst_name=st.sampled_from(["CSR", "CSC", "DIA", "ELL"]))
def test_spmv_invariant_under_conversion(problem, dst_name):
    dims, cells, vals = problem
    tensor = reference_build(COO, dims, cells, vals)
    x = np.linspace(-1.0, 1.0, dims[1])
    want = spmv(tensor, x)
    got = spmv(convert(tensor, _IDS[dst_name]), x)
    np.testing.assert_allclose(got, want, atol=1e-9)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=sparse_matrices())
def test_chained_conversions(problem):
    """COO → CSR → DIA → CSR' keeps content (the paper's pipeline)."""
    dims, cells, vals = problem
    want = dict(zip(cells, vals))
    tensor = reference_build(COO, dims, cells, vals)
    csr = convert(tensor, CSR)
    dia = convert(csr, DIA)
    back = convert(dia, CSR)
    assert back.to_coo() == want


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=sparse_matrices())
def test_generated_matches_reference_builder_csr(problem):
    """Generated COO→CSR equals the independent reference constructor
    up to within-row ordering."""
    dims, cells, vals = problem
    coo = reference_build(COO, dims, cells, vals)
    generated = convert(coo, CSR)
    reference = reference_build(CSR, dims, cells, vals)
    np.testing.assert_array_equal(
        generated.array(1, "pos"), reference.array(1, "pos")
    )
    pos = reference.array(1, "pos")
    for i in range(dims[0]):
        got = sorted(
            zip(
                generated.array(1, "crd")[pos[i]:pos[i + 1]],
                generated.vals[pos[i]:pos[i + 1]],
            )
        )
        want = sorted(
            zip(
                reference.array(1, "crd")[pos[i]:pos[i + 1]],
                reference.vals[pos[i]:pos[i + 1]],
            )
        )
        assert got == want


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(problem=sparse_matrices())
def test_unsequenced_equals_sequenced(problem):
    from repro.convert import PlanOptions

    dims, cells, vals = problem
    tensor = reference_build(COO, dims, cells, vals)
    seq = make_converter(COO, CSR)(tensor)
    unseq = make_converter(COO, CSR, PlanOptions(force_unsequenced_edges=True))(tensor)
    np.testing.assert_array_equal(seq.array(1, "pos"), unseq.array(1, "pos"))
    assert seq.to_coo() == unseq.to_coo()
