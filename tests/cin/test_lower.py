"""Tests for lowering attribute queries to canonical CIN (Section 5.2)."""

import pytest

from repro.cin import (
    DenseSpace,
    KeyDim,
    SrcNonzeros,
    VConst,
    VCoordMax,
    VCoordMin,
    VLoad,
    lower_query,
)
from repro.query import QuerySpec


def test_id_canonical_form():
    plan = lower_query(QuerySpec((0,), "id", (), "nz"), "Q", "W")
    assert len(plan.statements) == 1
    stmt = plan.statements[0]
    # ∀nz  Q[i1] |= map(B, 1)
    assert stmt.result == "Q"
    assert stmt.keys == (KeyDim(0),)
    assert stmt.op == "or="
    assert stmt.domain == SrcNonzeros()
    assert stmt.value == VConst(1)
    assert plan.decode is None


def test_count_canonical_form_uses_where_temporary():
    plan = lower_query(QuerySpec((0,), "count", (1, 2), "n"), "Q", "W")
    producer, consumer = plan.statements
    # (∀dense  Q[i1] += map(W, 1)) where (∀nz  W[i1,i2,i3] |= map(B, 1))
    assert producer.result == "W"
    assert producer.keys == (KeyDim(0), KeyDim(1), KeyDim(2))
    assert producer.op == "or="
    assert consumer.result == "Q"
    assert consumer.keys == (KeyDim(0),)
    assert consumer.domain == DenseSpace(producer.keys)
    assert consumer.value == VLoad("W", bool_map=True)


def test_max_canonical_form_is_shifted():
    plan = lower_query(QuerySpec((), "max", (1,), "m"), "Q", "W")
    stmt = plan.statements[0]
    # ∀nz  Q' max= map(B, i - s + 1);  Q == Q' + s - 1
    assert stmt.op == "max="
    assert stmt.value == VCoordMax(1)
    assert plan.decode == ("max", 1)


def test_min_canonical_form_is_negated_max():
    plan = lower_query(QuerySpec((0,), "min", (1,), "w"), "Q", "W")
    stmt = plan.statements[0]
    # ∀nz  Q' max= map(B, -i + t + 1);  Q == -Q' + t + 1
    assert stmt.op == "max="
    assert stmt.value == VCoordMin(1)
    assert plan.decode == ("min", 1)


def test_describe_renders_statements():
    plan = lower_query(QuerySpec((0,), "count", (1,), "n"), "Q", "W")
    text = plan.describe()
    assert "W" in text and "Q" in text and "∀" in text


def test_unknown_aggregation_rejected():
    spec = QuerySpec((0,), "count", (1,), "n")
    object.__setattr__(spec, "aggr", "median")
    with pytest.raises(ValueError):
        lower_query(spec, "Q", "W")
