"""End-to-end tests of the analysis code generator.

For each (source format × query) combination, generate the analysis code
with :class:`QueryCompiler`, execute it on a real tensor, and compare the
computed result array/scalar against brute-force evaluation of the same
query over the remapped nonzeros — proving the Table 1 optimizations
preserve semantics on every path (histogram, width-count, bit set,
counter-to-histogram, materialized temporary).
"""

import numpy as np
import pytest

from repro.cin.compile import QueryCompiler
from repro.convert.context import ConversionContext
from repro.formats.library import BCSR, COO, CSC, CSR, DIA, ELL
from repro.ir.nodes import Block, FuncDef, Return
from repro.ir.printer import print_func
from repro.ir.runtime import compile_source
from repro.ir.simplify import simplify_stmt
from repro.matrices.synthetic import random_matrix
from repro.query.evaluate import evaluate_query
from repro.query.spec import QuerySpec
from repro.remap.evaluate import apply_remap
from repro.storage.build import reference_build
from repro.utils.evaluate import evaluate_expr

DIMS, CELLS, VALS = random_matrix(9, 12, 40, seed=33)


def _run_analysis(src_format, dst_format, spec, level=None):
    """Generate, compile and run the analysis for one query; return the
    handle's decoded values as a dict keyed like evaluate_query's."""
    ctx = ConversionContext(src_format, dst_format)
    compiler = QueryCompiler(ctx)
    level = dst_format.nlevels - 1 if level is None else level
    stmts = compiler.compile([(level, spec)])

    handle = ctx.query(level, spec.label)
    body = list(stmts)
    body.append(Return([handle.var]))
    params = [var.name for _, var in ctx.param_list()]
    func = FuncDef("analysis", tuple(params), Block(tuple(simplify_stmt(Block(body)).stmts)))
    compiled = compile_source(print_func(func), "analysis")

    tensor = reference_build(src_format, DIMS, CELLS, VALS)
    args = []
    for (side, k, name), _ in ctx.param_list():
        if side == "src_array":
            args.append(tensor.vals if k == -1 else tensor.array(k, name))
        elif side == "src_meta":
            args.append(tensor.meta(k, name))
        else:
            args.append(tensor.dims[k])
    raw = compiled(*args)

    # decode: reproduce the handle's shift/negation on host values
    env = {f"N{d + 1}": DIMS[d] for d in range(2)}

    def decode(value):
        if handle.decode is None:
            return int(value)
        kind, dim = handle.decode
        interval = dst_format.dim_intervals()[dim]
        if kind == "max":
            lo = evaluate_expr(interval.lo, env)
            return int(value) + lo - 1
        hi = evaluate_expr(interval.hi, env)
        return hi + 1 - int(value)

    if handle.is_scalar:
        return {(): decode(raw)}
    out = {}
    extents = []
    for key in handle.keys:
        extents.append(evaluate_expr(ctx.key_extent(key), env))
    lows = [evaluate_expr(ctx.key_lo(key), env) for key in handle.keys]
    for flat, value in enumerate(np.asarray(raw)):
        key = []
        rest = flat
        for extent in reversed(extents):
            key.append(rest % extent)
            rest //= extent
        key = tuple(k + lo for k, lo in zip(reversed(key), lows))
        out[key] = decode(value)
    return out


def _expected(dst_format, spec):
    remapped = apply_remap(dst_format.remap, CELLS, params=dst_format.params)
    return evaluate_query(spec, remapped)


def _compare(got, want, default=None):
    for key, value in want.items():
        assert got[key] == value, (key, got[key], value)
    if default is not None:
        for key, value in got.items():
            if key not in want:
                assert value == default, (key, value)


@pytest.mark.parametrize("src", [COO, CSR, CSC, DIA, ELL], ids=lambda f: f.name)
def test_count_per_row(src):
    spec = QuerySpec((0,), "count", (1,), "nir")
    got = _run_analysis(src, CSR, spec, level=1)
    _compare(got, _expected(CSR, spec), default=0)


@pytest.mark.parametrize("src", [COO, CSR, CSC], ids=lambda f: f.name)
def test_count_distinct_blocks(src):
    bcsr = BCSR(2, 3)
    spec = QuerySpec((0,), "count", (1,), "nir")
    got = _run_analysis(src, bcsr, spec, level=1)
    _compare(got, _expected(bcsr, spec), default=0)


@pytest.mark.parametrize("src", [COO, CSR, CSC, DIA], ids=lambda f: f.name)
def test_id_over_diagonals(src):
    spec = QuerySpec((0,), "id", (), "nz")
    got = _run_analysis(src, DIA, spec, level=0)
    _compare(got, _expected(DIA, spec), default=0)


@pytest.mark.parametrize("src", [COO, CSR, CSC], ids=lambda f: f.name)
def test_max_counter_for_ell(src):
    spec = QuerySpec((), "max", (0,), "max_crd")
    got = _run_analysis(src, ELL, spec, level=0)
    assert got[()] == _expected(ELL, spec)[()]


@pytest.mark.parametrize("src", [COO, CSR], ids=lambda f: f.name)
def test_min_per_row_for_skyline(src):
    from repro.formats.library import SKY

    spec = QuerySpec((0,), "min", (1,), "w")
    got = _run_analysis(src, SKY, spec, level=1)
    # rows without nonzeros decode to hi + 1 == N2
    _compare(got, _expected(SKY, spec), default=DIMS[1])


def test_global_max_column():
    spec = QuerySpec((), "max", (1,), "ub")
    got = _run_analysis(CSR, CSR, spec, level=1)
    assert got[()] == max(j for _, j in CELLS)


def test_empty_tensor_defaults():
    """Empty inputs produce the documented defaults (0 / lo-1 / hi+1)."""
    global CELLS, VALS
    saved_cells, saved_vals = CELLS, VALS
    try:
        CELLS, VALS = [], []
        count = _run_analysis(COO, CSR, QuerySpec((0,), "count", (1,), "nir"), 1)
        assert all(v == 0 for v in count.values())
        peak = _run_analysis(COO, ELL, QuerySpec((), "max", (0,), "max_crd"), 0)
        assert peak[()] == -1  # lo - 1: "no slices"
    finally:
        CELLS, VALS = saved_cells, saved_vals
