"""Tests for the Table 1 CIN transformations: each rule's effect and its
preconditions, demonstrated on the paper's own conversion scenarios."""

import pytest

from repro.cin import (
    DenseSpace,
    KeyDim,
    KeySrc,
    QueryCompileError,
    SrcNonzeros,
    SrcPrefix,
    VConst,
    VLoad,
    VWidth,
    lower_query,
    optimize_plan,
)
from repro.cin.transforms import ConversionInfo
from repro.formats.library import BCSR, COO, CSR, DIA, ELL
from repro.ir.builder import NameGenerator
from repro.query import QuerySpec


def _optimize(spec, src_format, dst_format):
    ng = NameGenerator()
    plan = lower_query(spec, "Q", "W")
    info = ConversionInfo(src_format, dst_format.remap)
    return optimize_plan(plan, info, ng)


def test_canonical_count_has_two_statements():
    plan = lower_query(QuerySpec((0,), "count", (1,), "nir"), "Q", "W")
    assert len(plan.statements) == 2
    assert plan.statements[0].op == "or="
    assert plan.statements[1].op == "+="
    assert isinstance(plan.statements[1].domain, DenseSpace)


def test_coo_to_csr_count_becomes_single_histogram():
    """Figure 6c lines 1-6: one pass over nonzeros, no temporary.

    (reduction-to-assign then inline-temporary, as Section 5.2 traces;
    our pipeline additionally folds the trailing singleton level into a
    width-1 prefix pass, which is the same loop.)"""
    plan = _optimize(QuerySpec((0,), "count", (1,), "nir"), COO, CSR)
    assert len(plan.statements) == 1
    stmt = plan.statements[0]
    assert stmt.result == "Q"
    assert isinstance(stmt.domain, (SrcNonzeros, SrcPrefix))
    assert not isinstance(stmt.value, VLoad)  # temporary eliminated


def test_csr_count_uses_width_not_nonzeros():
    """CSR input: count(j) per row avoids iterating nonzeros entirely
    (simplify-width-count -> ∀i Qi = B'i)."""
    plan = _optimize(QuerySpec((0,), "count", (1,), "nir"), CSR, CSR)
    assert len(plan.statements) == 1
    stmt = plan.statements[0]
    assert stmt.domain == SrcPrefix(1)
    assert isinstance(stmt.value, VWidth)
    assert stmt.op == "="  # each row visited exactly once


def test_csr_to_ell_max_counter_becomes_width_max():
    """Figure 6b lines 1-5: K = max over rows of pos[i+1]-pos[i].

    counter-to-histogram, then simplify-width-count on the histogram,
    then inline-temporary."""
    plan = _optimize(QuerySpec((), "max", (0,), "max_crd"), CSR, ELL)
    assert len(plan.statements) == 1
    stmt = plan.statements[0]
    assert stmt.domain == SrcPrefix(1)
    assert isinstance(stmt.value, VWidth)
    assert stmt.op == "max="
    assert plan.decode == ("max", 0)


def test_coo_to_ell_max_counter_keeps_histogram():
    """COO input cannot use pos widths: the histogram must materialize."""
    plan = _optimize(QuerySpec((), "max", (0,), "max_crd"), COO, ELL)
    assert len(plan.statements) == 2
    producer, consumer = plan.statements
    assert producer.keys == (KeySrc("i"),)
    assert isinstance(producer.domain, (SrcNonzeros, SrcPrefix))
    assert isinstance(consumer.domain, DenseSpace)
    assert isinstance(consumer.value, VLoad)


def test_dia_id_query_stays_single_pass():
    plan = _optimize(QuerySpec((0,), "id", (), "nz"), CSR, DIA)
    assert len(plan.statements) == 1
    stmt = plan.statements[0]
    assert stmt.op == "="  # or= const is idempotent -> assignment
    assert stmt.value == VConst(1)
    assert stmt.keys == (KeyDim(0),)


def test_bcsr_block_count_keeps_temporary():
    """Counting *distinct* blocks cannot inline the bit-set temporary:
    several nonzeros share a block, so the inline precondition fails."""
    bcsr = BCSR(2, 2)
    plan = _optimize(QuerySpec((0,), "count", (1,), "nir"), CSR, bcsr)
    assert len(plan.statements) == 2
    producer, consumer = plan.statements
    assert producer.result == "W"
    assert producer.op == "="  # idempotent bit set
    assert isinstance(consumer.domain, DenseSpace)
    assert consumer.value == VLoad("W", bool_map=True)


def test_padded_source_blocks_width_count():
    """ELL stores explicit zeros, so widths over its levels overcount;
    the rule's precondition must reject it and keep the nonzero pass."""
    plan = _optimize(QuerySpec((0,), "count", (1,), "nir"), ELL, CSR)
    assert all(not isinstance(s.value, VWidth) for s in plan.statements)
    assert any(isinstance(s.domain, SrcNonzeros) for s in plan.statements)


def test_min_over_counter_rejected():
    with pytest.raises(QueryCompileError):
        _optimize(QuerySpec((), "min", (0,), "w"), CSR, ELL)


def test_conversion_info_canonical_levels():
    info = ConversionInfo(CSR, CSR.remap)
    assert info.canonical_level == {"i": 0, "j": 1}
    from repro.formats.library import CSC

    info = ConversionInfo(CSC, CSR.remap)
    assert info.canonical_level == {"i": 1, "j": 0}


def test_keys_cover_sources_div_mod():
    bcsr = BCSR(2, 2)
    info = ConversionInfo(CSR, bcsr.remap)
    # (i/M, j/N) alone does not determine (i, j)
    assert not info.keys_cover_sources((KeyDim(0), KeyDim(1)))
    # all four block coordinates do
    assert info.keys_cover_sources((KeyDim(0), KeyDim(1), KeyDim(2), KeyDim(3)))
