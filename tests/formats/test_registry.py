"""Tests for the format registry and spec parser."""

import pytest

import repro
from repro.formats import (
    COO,
    CSR,
    DIA,
    Format,
    FormatError,
    UnknownFormatError,
    available_formats,
    get_format,
    make_format,
    parse_format_spec,
    register_format,
    register_parameterized,
    spec_help,
)
from repro.levels.compressed import CompressedLevel
from repro.levels.dense import DenseLevel


def test_builtin_specs_resolve_to_library_objects():
    assert parse_format_spec("CSR") is CSR
    assert parse_format_spec("csr") is CSR
    assert parse_format_spec(" dia ") is DIA
    assert parse_format_spec("Coo") is COO


def test_parameterized_specs():
    assert parse_format_spec("BCSR2x3").params == {"M": 2, "N": 3}
    assert parse_format_spec("BCSR8").params == {"M": 8, "N": 8}
    assert parse_format_spec("BCSR").params == {"M": 4, "N": 4}
    assert parse_format_spec("HICOO8").params == {"B": 8}
    assert parse_format_spec("HICOO").params == {"B": 4}


def test_parameterized_instances_are_interned():
    assert parse_format_spec("BCSR8x8") is parse_format_spec("bcsr8X8")
    assert parse_format_spec("HICOO16") is parse_format_spec("hicoo16")


def test_unknown_specs_raise():
    for bad in ("NOPE", "", "BCSRxx", "BCSR0x4", "HICOOx", "HICOO0"):
        with pytest.raises(UnknownFormatError):
            parse_format_spec(bad)


def test_unknown_spec_error_lists_names_and_nearest_match():
    with pytest.raises(UnknownFormatError, match="did you mean 'CSR'"):
        parse_format_spec("CSRR")
    with pytest.raises(UnknownFormatError) as exc:
        parse_format_spec("totally-wrong")
    message = str(exc.value)
    assert "known:" in message and "CSR" in message and "HASH" in message
    assert "did you mean" not in message  # nothing is close enough


def test_spec_must_be_a_string():
    with pytest.raises(TypeError):
        parse_format_spec(42)


def test_get_format_passes_formats_through():
    assert get_format(CSR) is CSR
    assert get_format("CSR") is CSR


def test_register_custom_format_addressable_everywhere():
    fmt = make_format(
        "REGTESTCSR",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    register_format(fmt, "REGTESTALIAS")
    assert get_format("regtestcsr") is fmt
    assert get_format("REGTESTALIAS") is fmt
    assert "REGTESTCSR" in available_formats()
    # end to end: a registered name works as a convert() target spec
    coo = repro.build(COO, (3, 3), [(0, 1), (2, 2)], [1.0, 2.0])
    out = repro.convert(coo, "REGTESTCSR")
    assert out.format is fmt
    assert out.to_coo() == coo.to_coo()


def test_register_is_idempotent_but_conflicts_raise():
    fmt = make_format(
        "REGTESTTWICE",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    register_format(fmt)
    register_format(fmt)  # same object: fine
    other = make_format(
        "REGTESTTWICE",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    with pytest.raises(FormatError):
        register_format(other)
    register_format(other, overwrite=True)
    assert get_format("REGTESTTWICE") is other


def test_register_parameterized_family():
    def parse(suffix):
        if suffix.isdigit():
            return make_format(
                f"REGFAM{suffix}",
                "(i,j) -> (i, j)",
                [DenseLevel(), CompressedLevel(ordered=False)],
                inverse_text="(i,j) -> (i, j)",
            )
        return None

    register_parameterized("REGFAM", parse)
    fmt = get_format("REGFAM7")
    assert isinstance(fmt, Format) and fmt.name == "REGFAM7"
    assert get_format("regfam7") is fmt  # interned
    with pytest.raises(UnknownFormatError):
        get_format("REGFAMx")


def test_spec_help_mentions_families_and_names():
    text = spec_help()
    assert "CSR" in text and "BCSR<params>" in text


def test_parsing_specs_does_not_mutate_the_listing():
    before = set(available_formats())
    parse_format_spec("BCSR14x3")  # interned, but not "registered"
    assert set(available_formats()) == before
    # still interned for identity-keyed caches
    assert parse_format_spec("BCSR14x3") is parse_format_spec("bcsr14X3")


def test_register_format_is_atomic_across_aliases():
    fmt = make_format(
        "REGATOMIC",
        "(i,j) -> (i, j)",
        [DenseLevel(), CompressedLevel(ordered=False)],
        inverse_text="(i,j) -> (i, j)",
    )
    with pytest.raises(FormatError):
        register_format(fmt, "CSR")  # alias collides with a builtin
    # the conflict left the registry untouched: not even fmt's own name
    with pytest.raises(UnknownFormatError):
        parse_format_spec("REGATOMIC")
