"""Structural tests for every built-in format definition."""


from repro.formats import (
    BCSR,
    BUILTIN_FORMATS,
    COO,
    COO3,
    CSC,
    CSF,
    CSR,
    DCSR,
    DIA,
    ELL,
    HASH,
    HICOO,
    SKY,
)
from repro.remap import RCounter


def test_builtin_registry_complete():
    assert set(BUILTIN_FORMATS) == {
        "COO", "CSR", "CSC", "DIA", "ELL", "SKY", "DCSR", "HASH",
        "COO3", "CSF",
    }
    for name, fmt in BUILTIN_FORMATS.items():
        assert fmt.name == name


def test_level_compositions_match_paper():
    assert [lvl.name for lvl in COO.levels] == ["compressed", "singleton"]
    assert [lvl.name for lvl in CSR.levels] == ["dense", "compressed"]
    assert [lvl.name for lvl in CSC.levels] == ["dense", "compressed"]
    assert [lvl.name for lvl in DIA.levels] == ["squeezed", "dense", "offset"]
    assert [lvl.name for lvl in ELL.levels] == ["sliced", "dense", "singleton"]
    assert [lvl.name for lvl in SKY.levels] == ["dense", "banded"]
    assert [lvl.name for lvl in DCSR.levels] == ["compressed", "compressed"]
    assert [lvl.name for lvl in HASH.levels] == ["dense", "hashed"]
    assert [lvl.name for lvl in CSF.levels] == ["dense", "compressed", "compressed"]


def test_remappings_match_paper():
    assert str(DIA.remap) == "(i, j) -> ((j - i), i, j)"
    assert str(ELL.remap) == "(i, j) -> (k=#i in k, i, j)"
    assert str(CSC.remap) == "(i, j) -> (j, i)"
    assert ELL.remap.counters() == (RCounter(("i",)),)
    assert DIA.remap.counters() == ()


def test_coo_levels_are_nonunique_unordered():
    assert not COO.levels[0].unique
    assert not COO.levels[0].ordered
    assert COO3.levels[1].unique is False


def test_bcsr_parameterization():
    fmt = BCSR(8, 2)
    assert fmt.params == {"M": 8, "N": 2}
    assert fmt.name == "BCSR8x2"
    assert fmt.concrete_dim_extents((16, 16)) == (2, 8, 8, 2)


def test_hicoo_parameterization():
    fmt = HICOO(8)
    assert fmt.params == {"B": 8}
    assert fmt.nlevels == 5
    assert not fmt.padded  # stores only nonzeros, COO-style


def test_every_builtin_has_inverse():
    for fmt in BUILTIN_FORMATS.values():
        assert fmt.inverse is not None, fmt.name


def test_orders():
    for fmt in (COO, CSR, CSC, DIA, ELL, SKY, DCSR, HASH):
        assert fmt.order == 2
    for fmt in (COO3, CSF):
        assert fmt.order == 3
