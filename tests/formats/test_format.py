"""Tests for format descriptors: validation, signatures, dimension bounds."""

import pytest

from repro.formats import (
    BCSR,
    COO,
    CSC,
    CSR,
    DIA,
    ELL,
    HICOO,
    SKY,
    Format,
    FormatError,
    dim_size_vars,
    make_format,
)
from repro.ir import print_expr
from repro.levels import CompressedLevel, DenseLevel
from repro.remap import parse_remap


def test_level_count_must_match_remap():
    with pytest.raises(FormatError):
        make_format("bad", "(i,j) -> (i, j)", [DenseLevel()])


def test_inverse_arity_must_match_order():
    with pytest.raises(FormatError):
        make_format(
            "bad", "(i,j) -> (i, j)", [DenseLevel(), CompressedLevel()],
            inverse_text="(i,j) -> (i, j, i)",
        )


def test_unbound_parameters_rejected():
    with pytest.raises(FormatError):
        make_format(
            "bad", "(i,j) -> (i/M, i%M, j)",
            [DenseLevel(), DenseLevel(), CompressedLevel()],
        )


def test_signature_distinguishes_params():
    assert BCSR(2, 2).signature() != BCSR(4, 4).signature()
    assert BCSR(2, 2).signature() == BCSR(2, 2).signature()


def test_order_and_nlevels():
    assert CSR.order == 2 and CSR.nlevels == 2
    assert DIA.order == 2 and DIA.nlevels == 3
    assert BCSR(2, 2).nlevels == 4


def test_padded_classification():
    assert DIA.padded and ELL.padded and SKY.padded
    assert BCSR(2, 2).padded and not HICOO(2).padded
    assert not COO.padded and not CSR.padded and not CSC.padded


def test_dim_intervals_dia():
    lo, hi = DIA.dim_intervals()[0].lo, DIA.dim_intervals()[0].hi
    assert print_expr(lo) == "-(N1 - 1)"
    assert print_expr(hi) == "N2 - 1"


def test_concrete_dim_extents():
    assert CSR.concrete_dim_extents((4, 6)) == (4, 6)
    assert CSC.concrete_dim_extents((4, 6)) == (6, 4)
    assert DIA.concrete_dim_extents((4, 6)) == (9, 4, 6)
    assert ELL.concrete_dim_extents((4, 6)) == (None, 4, 6)  # counter dim
    assert BCSR(2, 3).concrete_dim_extents((4, 6)) == (2, 2, 2, 3)


def test_concrete_dim_lo():
    assert DIA.concrete_dim_lo((4, 6))[0] == -3
    assert CSR.concrete_dim_lo((4, 6)) == (0, 0)


def test_param_exprs_are_constants():
    params = BCSR(2, 3).param_exprs()
    assert print_expr(params["M"]) == "2" and print_expr(params["N"]) == "3"


def test_dim_size_vars():
    assert [v.name for v in dim_size_vars(3)] == ["N1", "N2", "N3"]


def test_str_and_repr():
    assert str(CSR) == "CSR"
    assert "CSR" in repr(CSR)


def test_custom_format_via_remap_object():
    fmt = Format(
        name="T",
        remap=parse_remap("(i,j) -> (j, i)"),
        levels=(DenseLevel(), CompressedLevel()),
        inverse=parse_remap("(j,i) -> (i, j)"),
    )
    assert fmt.order == 2
    assert fmt.concrete_dim_extents((3, 7)) == (7, 3)
