"""Correctness tests for the SPARSKIT/MKL/taco-legacy baselines against
the reference builders — the benchmark comparison is only meaningful if
every implementation computes the same conversion."""

import numpy as np
import pytest

from repro.baselines import mkl_like, sparskit, taco_legacy
from repro.formats.library import COO, CSC, CSR, DIA, ELL
from repro.matrices.synthetic import random_matrix, stencil
from repro.storage.build import reference_build


@pytest.fixture(scope="module")
def problem():
    dims, coords, vals = random_matrix(25, 31, 160, seed=13)
    return {
        "dims": dims,
        "coords": coords,
        "vals": vals,
        "coo": reference_build(COO, dims, coords, vals),
        "csr": reference_build(CSR, dims, coords, vals),
        "csc": reference_build(CSC, dims, coords, vals),
        "dia": reference_build(DIA, dims, coords, vals),
        "ell": reference_build(ELL, dims, coords, vals),
    }


def _rows_match(pos, crd, vals, want_csr):
    if not np.array_equal(pos, want_csr.array(1, "pos")):
        return False
    want_crd = want_csr.array(1, "crd")
    want_vals = want_csr.vals
    for i in range(len(pos) - 1):
        got = sorted(zip(crd[pos[i]:pos[i + 1]], vals[pos[i]:pos[i + 1]]))
        want = sorted(zip(want_crd[pos[i]:pos[i + 1]], want_vals[pos[i]:pos[i + 1]]))
        if got != want:
            return False
    return True


@pytest.mark.parametrize("impl", [sparskit.coocsr, mkl_like.coocsr,
                                  taco_legacy.coocsr_sorting],
                         ids=["sparskit", "mkl", "taco_legacy"])
def test_coocsr_variants(problem, impl):
    coo = problem["coo"]
    nrow = problem["dims"][0]
    pos, crd, vals = impl(nrow, coo.array(0, "crd"), coo.array(1, "crd"), coo.vals)
    assert _rows_match(pos, crd, vals, problem["csr"])


def test_taco_legacy_output_is_fully_sorted(problem):
    coo = problem["coo"]
    pos, crd, _ = taco_legacy.coocsr_sorting(
        problem["dims"][0], coo.array(0, "crd"), coo.array(1, "crd"), coo.vals
    )
    for i in range(len(pos) - 1):
        segment = crd[pos[i]:pos[i + 1]]
        assert np.all(np.diff(segment) > 0)


@pytest.mark.parametrize("impl", [sparskit.csrcsc, mkl_like.csrcsc],
                         ids=["sparskit", "mkl"])
def test_csrcsc_variants(problem, impl):
    csr, csc = problem["csr"], problem["csc"]
    nrow, ncol = problem["dims"]
    pos, crd, vals = impl(nrow, ncol, csr.array(1, "pos"), csr.array(1, "crd"), csr.vals)
    assert np.array_equal(pos, csc.array(1, "pos"))
    assert np.array_equal(crd, csc.array(1, "crd"))
    assert np.allclose(vals, csc.vals)


@pytest.mark.parametrize("impl", [sparskit.csrdia, mkl_like.csrdia],
                         ids=["sparskit", "mkl"])
def test_csrdia_variants(problem, impl):
    csr, dia = problem["csr"], problem["dia"]
    nrow, ncol = problem["dims"]
    offsets, diag = impl(nrow, ncol, csr.array(1, "pos"), csr.array(1, "crd"), csr.vals)
    assert np.array_equal(offsets, dia.array(0, "perm"))
    assert np.allclose(diag, dia.vals)


def test_csrdia_bounded_diagonals():
    """SPARSKIT's ndiag argument keeps only the densest diagonals."""
    dims, coords, vals = stencil(30, [0, -1, 1], partial=[9], seed=1)
    csr = reference_build(CSR, dims, coords, vals)
    offsets, _ = sparskit.csrdia(30, 30, csr.array(1, "pos"),
                                 csr.array(1, "crd"), csr.vals, ndiag=3)
    assert len(offsets) == 3
    assert set(offsets) == {-1, 0, 1}  # the partial 9-diagonal is dropped


def test_csrell_variants(problem):
    csr, ell = problem["csr"], problem["ell"]
    ndiag, jcoef, coef = sparskit.csrell(
        problem["dims"][0], csr.array(1, "pos"), csr.array(1, "crd"), csr.vals
    )
    assert ndiag == ell.meta(0, "K")
    assert np.array_equal(jcoef, ell.array(2, "crd"))
    assert np.allclose(coef, ell.vals)


def test_via_csr_composites(problem):
    coo, csc, dia, ell = (problem[k] for k in ("coo", "csc", "dia", "ell"))
    nrow, ncol = problem["dims"]
    offsets, diag = sparskit.coodia_via_csr(
        nrow, ncol, coo.array(0, "crd"), coo.array(1, "crd"), coo.vals
    )
    assert np.array_equal(offsets, dia.array(0, "perm"))
    assert np.allclose(diag, dia.vals)

    offsets, diag = mkl_like.cscdia_via_csr(
        nrow, ncol, csc.array(1, "pos"), csc.array(1, "crd"), csc.vals
    )
    assert np.array_equal(offsets, dia.array(0, "perm"))
    assert np.allclose(diag, dia.vals)

    ndiag, jcoef, coef = sparskit.cscell_via_csr(
        nrow, ncol, csc.array(1, "pos"), csc.array(1, "crd"), csc.vals
    )
    assert ndiag == ell.meta(0, "K")
    assert np.allclose(coef, ell.vals)

    ndiag, _, coef = sparskit.cooell_via_csr(
        nrow, coo.array(0, "crd"), coo.array(1, "crd"), coo.vals
    )
    assert ndiag == ell.meta(0, "K")
    assert np.allclose(coef, ell.vals)


def test_infdia_counts(problem):
    csr = problem["csr"]
    nrow, ncol = problem["dims"]
    counts = sparskit.infdia(nrow, ncol, csr.array(1, "pos"), csr.array(1, "crd"))
    assert counts.sum() == len(problem["coords"])
    diagonals = {j - i for i, j in problem["coords"]}
    assert np.count_nonzero(counts) == len(diagonals)


def test_empty_matrix_baselines():
    pos = np.zeros(6, dtype=np.int64)
    crd = np.zeros(0, dtype=np.int64)
    vals = np.zeros(0, dtype=np.float64)
    out_pos, _, _ = sparskit.csrcsc(5, 5, pos, crd, vals)
    assert np.array_equal(out_pos, np.zeros(6, dtype=np.int64))
    offsets, diag = sparskit.csrdia(5, 5, pos, crd, vals)
    assert len(offsets) == 0 and len(diag) == 0
    ndiag, _, _ = sparskit.csrell(5, pos, crd, vals)
    assert ndiag == 0
